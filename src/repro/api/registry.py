"""A generic name -> implementation registry with decorator registration.

Every pluggable axis of the system — sampling algorithms, execution
algorithms, datasets — is one :class:`Registry` instance (see
:mod:`repro.api.registries`).  Entries carry arbitrary metadata alongside
the registered object, which is how capability gating works: the registry
records *what* an implementation can do and the config layer refuses
combinations the metadata rules out, with an error that names the keys
that would have been accepted.

Usage::

    SAMPLERS = Registry("sampler")

    @SAMPLERS.register("my-sampler", default_conv="sage")
    class MySampler(MatrixSampler):
        ...

    SAMPLERS.get("my-sampler")      # -> MySampler
    SAMPLERS.spec("my-sampler")     # -> RegistryEntry with metadata
    SAMPLERS.names()                # -> sorted names, plugins included
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

__all__ = ["Registry", "RegistryEntry", "RegistryKeyError", "CapabilityError"]


class RegistryKeyError(KeyError):
    """Lookup of a name the registry does not know.

    The message always lists the known keys, so a typo'd ``--sampler`` or a
    config written against a plugin that was never imported is
    self-diagnosing.
    """

    def __init__(self, kind: str, name: str, known: list[str]) -> None:
        self.kind = kind
        self.name = name
        self.known = known
        opts = ", ".join(known) if known else "<none registered>"
        super().__init__(f"unknown {kind} {name!r}; known {kind}s: {opts}")

    def __str__(self) -> str:  # KeyError quotes its arg; keep the sentence.
        return self.args[0]


class CapabilityError(ValueError):
    """A known implementation was asked to do something its registry
    metadata says it cannot (e.g. a sampling-only sampler in the training
    pipeline, or SAINT under the partitioned execution algorithm)."""


@dataclass(frozen=True)
class RegistryEntry:
    """One registered implementation plus its metadata."""

    name: str
    obj: Any
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def meta(self, key: str, default: Any = None) -> Any:
        return self.metadata.get(key, default)


class Registry:
    """A string-keyed registry of pluggable implementations.

    ``register`` works both as a decorator and as a direct call; either way
    keyword arguments beyond the reserved ``overwrite`` become the entry's
    metadata.  Registering an existing name raises unless ``overwrite=True``
    — silent shadowing of a built-in is never what a plugin author wants.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, RegistryEntry] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        obj: Any | None = None,
        *,
        overwrite: bool = False,
        **metadata: Any,
    ) -> Any:
        """Register ``obj`` under ``name``; decorator form when ``obj`` is
        omitted.  Returns the registered object either way."""
        if obj is None:
            def decorator(target: Any) -> Any:
                self.register(name, target, overwrite=overwrite, **metadata)
                return target

            return decorator
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty string")
        if name in self._entries and not overwrite:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; "
                f"pass overwrite=True to replace it"
            )
        self._entries[name] = RegistryEntry(name, obj, dict(metadata))
        return obj

    def unregister(self, name: str) -> None:
        """Remove an entry (mainly for tests and plugin reloads)."""
        if name not in self._entries:
            raise RegistryKeyError(self.kind, name, self.names())
        del self._entries[name]

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def spec(self, name: str) -> RegistryEntry:
        """The full entry (object + metadata) for ``name``."""
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryKeyError(self.kind, name, self.names()) from None

    def get(self, name: str) -> Any:
        """The registered object for ``name``."""
        return self.spec(name).obj

    def names(self) -> list[str]:
        """Sorted registered names (built-ins and plugins alike)."""
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {self.names()})"
