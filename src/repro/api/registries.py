"""The system's pluggable axes: SAMPLERS, ALGORITHMS and DATASETS.

The paper's core claim is that one matrix abstraction (Algorithm 1)
expresses every sampling algorithm; these registries make that claim
operational.  Samplers, execution algorithms and datasets are looked up by
name *only* here — the CLI, the training pipeline, the benchmark harness
and the Engine all resolve through these tables, so registering a plugin
makes it available everywhere at once::

    from repro.api import SAMPLERS

    @SAMPLERS.register("my-sampler", default_conv="sage")
    class MySampler(MatrixSampler):
        ...

    # now valid: RunConfig(sampler="my-sampler"), repro train --sampler ...

Sampler metadata keys
---------------------
``default_conv``
    Model convolution the trainer uses when ``RunConfig.conv`` is unset.
``pipeline_kwargs``
    Constructor kwargs applied when the sampler is built for training
    (the built-ins add ``include_dst=True`` so models keep a root term).
``algorithms``
    Execution algorithms the sampler supports; defaults to
    ``("single", "replicated")`` because those run the sampler's own
    ``sample_bulk`` unchanged.  Only samplers with a per-layer partitioned
    formulation list ``"partitioned"``.
``capabilities``
    ``"sample"`` and/or ``"train"``; a sampling-only entry raises
    :class:`~repro.api.registry.CapabilityError` from the pipeline.
``default_fanout``
    CLI default when ``--fanout`` is not given.
``graph_aware``
    The factory takes the graph as first argument (for samplers whose
    state depends on graph statistics, e.g. degree-biased sampling).
"""

from __future__ import annotations

from typing import Any

from ..core import (
    FastGCNSampler,
    GraphSaintRWSampler,
    LadiesSampler,
    MatrixSampler,
    SageSampler,
)
from ..graphs import Graph, load_dataset
from ..graphs.datasets import PAPER_DATASETS
from .backends import PartitionedBackend, ReplicatedBackend, SingleDeviceBackend
from .registry import CapabilityError, Registry

__all__ = [
    "SAMPLERS",
    "ALGORITHMS",
    "DATASETS",
    "make_sampler",
    "load_graph_from_registry",
    "CapabilityError",
]

#: All matrix-expressible sampling algorithms, built-in and plugin.
SAMPLERS = Registry("sampler")

#: Execution strategies (where/how bulk sampling runs).
ALGORITHMS = Registry("algorithm")

#: Datasets loadable by name.
DATASETS = Registry("dataset")


# ---------------------------------------------------------------------- #
# Built-in samplers
# ---------------------------------------------------------------------- #
SAMPLERS.register(
    "sage",
    SageSampler,
    default_conv="sage",
    pipeline_kwargs={"include_dst": True},
    algorithms=("single", "replicated", "partitioned"),
    capabilities=("sample", "train"),
    default_fanout=(5, 3),
    family="node-wise",
)
SAMPLERS.register(
    "ladies",
    LadiesSampler,
    default_conv="gcn",
    pipeline_kwargs={"include_dst": True},
    algorithms=("single", "replicated", "partitioned"),
    capabilities=("sample", "train"),
    default_fanout=(64,),
    family="layer-wise",
)
SAMPLERS.register(
    "fastgcn",
    FastGCNSampler,
    default_conv="gcn",
    pipeline_kwargs={"include_dst": True},
    algorithms=("single", "replicated", "partitioned"),
    capabilities=("sample", "train"),
    default_fanout=(64,),
    family="layer-wise",
)
# SAINT is graph-wise: its sample_bulk produces whole induced subgraphs, so
# it runs under any algorithm that calls sample_bulk directly (single,
# replicated) but has no per-layer partitioned formulation.
SAMPLERS.register(
    "saint",
    GraphSaintRWSampler,
    default_conv="gcn",
    pipeline_kwargs={},
    algorithms=("single", "replicated"),
    capabilities=("sample", "train"),
    default_fanout=(3, 3),
    family="graph-wise",
)


# ---------------------------------------------------------------------- #
# Built-in execution algorithms
# ---------------------------------------------------------------------- #
ALGORITHMS.register(
    "single", SingleDeviceBackend, scalable=False,
    description="one device, no distribution",
)
ALGORITHMS.register(
    "replicated", ReplicatedBackend, scalable=True,
    description="Graph Replicated (section 5.1): A on every rank",
)
ALGORITHMS.register(
    "partitioned", PartitionedBackend, scalable=True,
    description="Graph Partitioned (section 5.2): 1.5D sparsity-aware SpGEMM",
)


# ---------------------------------------------------------------------- #
# Built-in datasets (the paper's Table 3 stand-ins)
# ---------------------------------------------------------------------- #
def _register_paper_dataset(name: str) -> None:
    DATASETS.register(
        name,
        lambda **kwargs: load_dataset(name, **kwargs),
        spec=PAPER_DATASETS[name],
    )


for _name in PAPER_DATASETS:
    _register_paper_dataset(_name)


# ---------------------------------------------------------------------- #
# Construction helpers
# ---------------------------------------------------------------------- #
def make_sampler(
    name: str,
    *,
    graph: Graph | None = None,
    for_training: bool = False,
    kernel: Any = None,
    **overrides: Any,
) -> MatrixSampler:
    """Instantiate a registered sampler.

    ``for_training`` applies the entry's ``pipeline_kwargs`` (the built-ins
    use it to add the destination vertices to each frontier so models keep
    a root term).  ``graph`` is forwarded as the first argument for
    ``graph_aware`` entries.  ``kernel`` (a :data:`repro.sparse.KERNELS`
    name or backend instance) selects the sparse-kernel backend — it is
    resolved and assigned to the instance after construction, so plugin
    factories need not accept a ``kernel`` kwarg themselves.  ``overrides``
    go to the factory verbatim.
    """
    from ..sparse.kernels import get_kernel

    entry = SAMPLERS.spec(name)
    kwargs: dict[str, Any] = {}
    if for_training:
        kwargs.update(entry.meta("pipeline_kwargs", {}))
    kwargs.update(overrides)
    if entry.meta("graph_aware", False):
        if graph is None:
            raise ValueError(
                f"sampler {name!r} is graph-aware and needs a graph to build"
            )
        sampler = entry.obj(graph, **kwargs)
    else:
        sampler = entry.obj(**kwargs)
    if kernel is not None:
        sampler.kernel = get_kernel(kernel)
    return sampler


def load_graph_from_registry(
    name: str, *, scale: float = 1.0, seed: int = 0, **kwargs: Any
) -> Graph:
    """Load a registered dataset by name."""
    return DATASETS.get(name)(scale=scale, seed=seed, **kwargs)


def check_sampler_supports(sampler: str, algorithm: str) -> None:
    """Raise :class:`CapabilityError` if the sampler's registry metadata
    rules out the requested execution algorithm."""
    entry = SAMPLERS.spec(sampler)
    supported = tuple(entry.meta("algorithms", ("single", "replicated")))
    if algorithm not in supported:
        raise CapabilityError(
            f"sampler {sampler!r} does not support the {algorithm!r} "
            f"execution algorithm; supported: {', '.join(supported)}"
        )


def check_sampler_trains(sampler: str) -> None:
    """Raise :class:`CapabilityError` for sampling-only entries used in
    the training pipeline."""
    entry = SAMPLERS.spec(sampler)
    caps = tuple(entry.meta("capabilities", ("sample", "train")))
    if "train" not in caps:
        raise CapabilityError(
            f"sampler {sampler!r} is sampling-only (capabilities: "
            f"{', '.join(caps)}); it cannot drive the training pipeline"
        )
