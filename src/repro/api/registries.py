"""The system's pluggable axes: SAMPLERS, ALGORITHMS and DATASETS.

The paper's core claim is that one matrix abstraction (Algorithm 1)
expresses every sampling algorithm; these registries make that claim
operational.  Samplers, execution algorithms and datasets are looked up by
name *only* here — the CLI, the training pipeline, the benchmark harness
and the Engine all resolve through these tables, so registering a plugin
makes it available everywhere at once::

    from repro.api import SAMPLERS

    @SAMPLERS.register("my-sampler", default_conv="sage")
    class MySampler(MatrixSampler):
        ...

    # now valid: RunConfig(sampler="my-sampler"), repro train --sampler ...

Sampler metadata keys
---------------------
``default_conv``
    Model convolution the trainer uses when ``RunConfig.conv`` is unset.
``pipeline_kwargs``
    Constructor kwargs applied when the sampler is built for training
    (the built-ins add ``include_dst=True`` so models keep a root term).
``algorithms``
    Explicit override of the execution algorithms the sampler supports.
    Usually *omitted*: support is **derived** — ``single`` and
    ``replicated`` run the sampler's own ``sample_bulk`` unchanged, and
    ``partitioned`` is available whenever the sampler emits a sampling
    plan (:meth:`~repro.core.MatrixSampler.plan`), because the 1.5D
    executor interprets the plan generically.  A registered class is
    inspected directly; a factory function hides its product, so factories
    that want partitioned support declare it here.
``capabilities``
    ``"sample"`` and/or ``"train"``; a sampling-only entry raises
    :class:`~repro.api.registry.CapabilityError` from the pipeline.
``default_fanout``
    CLI default when ``--fanout`` is not given.
``graph_aware``
    The factory takes the graph as first argument (for samplers whose
    state depends on graph statistics, e.g. degree-biased sampling).
"""

from __future__ import annotations

from typing import Any

from ..core import (
    FastGCNSampler,
    GraphSaintRWSampler,
    LadiesSampler,
    MatrixSampler,
    SageSampler,
)
from ..graphs import Graph, load_dataset
from ..graphs.datasets import PAPER_DATASETS
from ..parallel import ParallelBackend
from .backends import PartitionedBackend, ReplicatedBackend, SingleDeviceBackend
from .registry import CapabilityError, Registry

__all__ = [
    "SAMPLERS",
    "ALGORITHMS",
    "DATASETS",
    "make_sampler",
    "load_graph_from_registry",
    "sampler_algorithms",
    "CapabilityError",
]

#: All matrix-expressible sampling algorithms, built-in and plugin.
SAMPLERS = Registry("sampler")

#: Execution strategies (where/how bulk sampling runs).
ALGORITHMS = Registry("algorithm")

#: Datasets loadable by name.
DATASETS = Registry("dataset")


# ---------------------------------------------------------------------- #
# Built-in samplers
# ---------------------------------------------------------------------- #
# No ``algorithms`` metadata on the built-ins: all four emit sampling
# plans, so partitioned support is derived — including graph-wise SAINT,
# whose walk products and subgraph induction distribute through the same
# plan interpreter as everything else.
SAMPLERS.register(
    "sage",
    SageSampler,
    default_conv="sage",
    pipeline_kwargs={"include_dst": True},
    capabilities=("sample", "train"),
    default_fanout=(5, 3),
    family="node-wise",
)
SAMPLERS.register(
    "ladies",
    LadiesSampler,
    default_conv="gcn",
    pipeline_kwargs={"include_dst": True},
    capabilities=("sample", "train"),
    default_fanout=(64,),
    family="layer-wise",
)
SAMPLERS.register(
    "fastgcn",
    FastGCNSampler,
    default_conv="gcn",
    pipeline_kwargs={"include_dst": True},
    capabilities=("sample", "train"),
    default_fanout=(64,),
    family="layer-wise",
)
SAMPLERS.register(
    "saint",
    GraphSaintRWSampler,
    default_conv="gcn",
    pipeline_kwargs={},
    capabilities=("sample", "train"),
    default_fanout=(3, 3),
    family="graph-wise",
)


# ---------------------------------------------------------------------- #
# Built-in execution algorithms
# ---------------------------------------------------------------------- #
ALGORITHMS.register(
    "single", SingleDeviceBackend, scalable=False,
    description="one device, no distribution",
)
ALGORITHMS.register(
    "replicated", ReplicatedBackend, scalable=True,
    description="Graph Replicated (section 5.1): A on every rank",
)
ALGORITHMS.register(
    "partitioned", PartitionedBackend, scalable=True,
    description="Graph Partitioned (section 5.2): 1.5D sparsity-aware SpGEMM",
)
# Not "scalable" in the simulated-rank sense: it parallelizes over real
# worker processes (RunConfig.workers), so p stays 1 and sweeping simulated
# world sizes over it is meaningless.
ALGORITHMS.register(
    "parallel", ParallelBackend, scalable=False,
    description="real multi-core bulk sampling: shared-memory worker pool "
    "(workers=N; workers=0 runs serial, bit-identical)",
)


# ---------------------------------------------------------------------- #
# Built-in datasets (the paper's Table 3 stand-ins)
# ---------------------------------------------------------------------- #
def _register_paper_dataset(name: str) -> None:
    DATASETS.register(
        name,
        lambda **kwargs: load_dataset(name, **kwargs),
        spec=PAPER_DATASETS[name],
    )


for _name in PAPER_DATASETS:
    _register_paper_dataset(_name)


# ---------------------------------------------------------------------- #
# Construction helpers
# ---------------------------------------------------------------------- #
def make_sampler(
    name: str,
    *,
    graph: Graph | None = None,
    for_training: bool = False,
    kernel: Any = None,
    **overrides: Any,
) -> MatrixSampler:
    """Instantiate a registered sampler.

    ``for_training`` applies the entry's ``pipeline_kwargs`` (the built-ins
    use it to add the destination vertices to each frontier so models keep
    a root term).  ``graph`` is forwarded as the first argument for
    ``graph_aware`` entries.  ``kernel`` (a :data:`repro.sparse.KERNELS`
    name or backend instance) selects the sparse-kernel backend — it is
    resolved and assigned to the instance after construction, so plugin
    factories need not accept a ``kernel`` kwarg themselves.  ``overrides``
    go to the factory verbatim.
    """
    from ..sparse.kernels import get_kernel

    entry = SAMPLERS.spec(name)
    kwargs: dict[str, Any] = {}
    if for_training:
        kwargs.update(entry.meta("pipeline_kwargs", {}))
    kwargs.update(overrides)
    if entry.meta("graph_aware", False):
        if graph is None:
            raise ValueError(
                f"sampler {name!r} is graph-aware and needs a graph to build"
            )
        sampler = entry.obj(graph, **kwargs)
    else:
        sampler = entry.obj(**kwargs)
    if kernel is not None:
        sampler.kernel = get_kernel(kernel)
    return sampler


def load_graph_from_registry(
    name: str, *, scale: float = 1.0, seed: int = 0, **kwargs: Any
) -> Graph:
    """Load a registered dataset by name."""
    return DATASETS.get(name)(scale=scale, seed=seed, **kwargs)


def _emits_plan(obj: Any) -> bool:
    """Whether a registered sampler object is known to emit a sampling
    plan.  Classes are inspected directly (``plan`` overridden from the
    :class:`~repro.core.MatrixSampler` base); factory functions hide their
    product, so they must opt in via explicit ``algorithms`` metadata."""
    if isinstance(obj, type) and issubclass(obj, MatrixSampler):
        return obj.plan is not MatrixSampler.plan
    return False


def sampler_algorithms(sampler: str) -> tuple[str, ...]:
    """Execution algorithms a registered sampler supports.

    Explicit ``algorithms`` metadata wins; otherwise support is derived:
    ``single``, ``replicated`` and ``parallel`` always work (all three run
    the sampler's own ``sample_bulk`` — ``parallel`` just does it on real
    worker processes with the same per-batch RNG discipline as
    ``replicated``), and ``partitioned`` is available iff the sampler
    emits a plan — distribution is a property of the plan, not of any
    per-sampler distributed code.
    """
    entry = SAMPLERS.spec(sampler)
    explicit = entry.meta("algorithms", None)
    if explicit is not None:
        return tuple(explicit)
    derived = ("single", "replicated", "parallel")
    if _emits_plan(entry.obj):
        derived += ("partitioned",)
    return derived


def check_sampler_supports(sampler: str, algorithm: str) -> None:
    """Raise :class:`CapabilityError` if the sampler's (explicit or
    derived) capabilities rule out the requested execution algorithm."""
    supported = sampler_algorithms(sampler)
    if algorithm not in supported:
        derived = SAMPLERS.spec(sampler).meta("algorithms", None) is None
        why = (
            " (it is not known to emit a sampling plan)"
            if algorithm == "partitioned" and derived
            else ""
        )
        raise CapabilityError(
            f"sampler {sampler!r} does not support the {algorithm!r} "
            f"execution algorithm{why}; supported: {', '.join(supported)}"
        )


def check_sampler_trains(sampler: str) -> None:
    """Raise :class:`CapabilityError` for sampling-only entries used in
    the training pipeline."""
    entry = SAMPLERS.spec(sampler)
    caps = tuple(entry.meta("capabilities", ("sample", "train")))
    if "train" not in caps:
        raise CapabilityError(
            f"sampler {sampler!r} is sampling-only (capabilities: "
            f"{', '.join(caps)}); it cannot drive the training pipeline"
        )
