"""Cost models for the simulated cluster.

All simulated time in this reproduction comes from two places:

* **Communication** — the alpha-beta model the paper itself uses for its
  analysis (section 2.4): a message of ``n`` bytes over a link costs
  ``alpha + beta * n`` seconds.  Links are chosen from the machine's
  two-level hierarchy (intra-node NVLink vs inter-node NIC).
* **Computation** — a roofline per device: ``kernel_overhead * kernels +
  max(flops / peak_flops, bytes / memory_bandwidth)``.

The helpers here also know how to measure the size in bytes of the payloads
our algorithms move around (numpy arrays, CSR matrices, nested containers).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..config import MachineConfig, PERLMUTTER_LIKE
from ..sparse import CSRMatrix

__all__ = ["payload_nbytes", "CostModel", "Unscaled"]


class Unscaled:
    """Marks a payload whose wire size must ignore ``work_scale``.

    Sim-scale runs scale graph-derived payloads up to paper magnitude, but
    some payloads are already at true size regardless of the graph — model
    gradients above all.  Wrap those in ``Unscaled`` before handing them to
    a collective.
    """

    __slots__ = ("payload",)

    def __init__(self, payload: object) -> None:
        self.payload = payload


def payload_nbytes(payload: object) -> int:
    """Wire size in bytes of a payload moved by a collective.

    Understands ``None`` (0 bytes), numbers (8 bytes), numpy arrays, our
    :class:`CSRMatrix` (indptr + indices + data), and nested lists/tuples/
    dicts of the above.
    """
    if payload is None:
        return 0
    if isinstance(payload, (bool, int, float, np.integer, np.floating)):
        return 8
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, CSRMatrix):
        return int(
            payload.indptr.nbytes + payload.indices.nbytes + payload.data.nbytes
        )
    if isinstance(payload, dict):
        return sum(payload_nbytes(v) for v in payload.values())
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(v) for v in payload)
    declared = getattr(payload, "nbytes", None)
    if declared is not None:  # duck-typed wrappers that declare a wire size
        return int(declared)
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


class CostModel:
    """Charges simulated seconds for messages and kernels on a machine."""

    def __init__(self, machine: MachineConfig = PERLMUTTER_LIKE) -> None:
        self.machine = machine

    # -------------------------------------------------------------- #
    # Point-to-point
    # -------------------------------------------------------------- #
    def p2p(self, src: int, dst: int, nbytes: float) -> float:
        """One message of ``nbytes`` from rank ``src`` to rank ``dst``."""
        if src == dst:
            return 0.0
        return self.machine.link(src, dst).time(nbytes)

    # -------------------------------------------------------------- #
    # Collectives (bulk-synchronous; returns the common completion time)
    # -------------------------------------------------------------- #
    def _group_link(self, ranks: Sequence[int]):
        """Worst link any pair in the group must traverse."""
        nodes = {self.machine.node_of(r) for r in ranks}
        return self.machine.intra_node if len(nodes) <= 1 else self.machine.inter_node

    def bcast(self, ranks: Sequence[int], nbytes: float) -> float:
        """Binomial-tree broadcast of ``nbytes`` to ``len(ranks)`` ranks."""
        g = len(ranks)
        if g <= 1:
            return 0.0
        rounds = math.ceil(math.log2(g))
        return rounds * self._group_link(ranks).time(nbytes)

    def allreduce(self, ranks: Sequence[int], nbytes: float) -> float:
        """Ring all-reduce of an ``nbytes`` buffer over the group."""
        g = len(ranks)
        if g <= 1:
            return 0.0
        link = self._group_link(ranks)
        # Ring: 2(g-1) steps, each moving n/g bytes.
        return 2 * (g - 1) * link.alpha + 2 * link.beta * nbytes * (g - 1) / g

    def gather(self, ranks: Sequence[int], nbytes_per_rank: Iterable[float]) -> float:
        """Gather onto a root: one message per non-root rank."""
        sizes = list(nbytes_per_rank)
        g = len(sizes)
        if g <= 1:
            return 0.0
        link = self._group_link(ranks)
        return (g - 1) * link.alpha + link.beta * sum(sizes[1:])

    def allgather(self, ranks: Sequence[int], nbytes_per_rank: Iterable[float]) -> float:
        """Ring all-gather; every rank ends with every contribution."""
        sizes = list(nbytes_per_rank)
        g = len(sizes)
        if g <= 1:
            return 0.0
        link = self._group_link(ranks)
        return (g - 1) * link.alpha + link.beta * sum(sizes)

    def alltoallv_rank(
        self, rank: int, ranks: Sequence[int], sent: float, received: float
    ) -> float:
        """Per-rank cost of an all-to-allv: pairwise exchange rounds.

        Each rank pays latency for ``g - 1`` peer messages plus bandwidth for
        whichever direction dominates (sends and receives overlap on
        full-duplex links).

        When the group spans nodes, ranks sharing a node contend for its
        NIC: the bandwidth term is multiplied by the number of group members
        on ``rank``'s node.  This is why the paper's feature fetch scales
        with the replication factor — a process column with ``c >= 4`` has
        one member per node (no contention) while a flat all-to-all over
        all GPUs (Quiver, or c = 1) has a whole node's GPUs behind one NIC.
        """
        g = len(ranks)
        if g <= 1:
            return 0.0
        link = self._group_link(ranks)
        contention = 1
        if link is self.machine.inter_node:
            node = self.machine.node_of(rank)
            contention = sum(1 for r in ranks if self.machine.node_of(r) == node)
        return (g - 1) * link.alpha + link.beta * contention * max(sent, received)

    # -------------------------------------------------------------- #
    # Computation
    # -------------------------------------------------------------- #
    def compute(self, flops: float = 0.0, nbytes: float = 0.0, kernels: int = 1) -> float:
        """Device (GPU) kernel time under the roofline model."""
        return self.machine.device.time(flops=flops, nbytes=nbytes, kernels=kernels)

    def host_compute(self, flops: float = 0.0, nbytes: float = 0.0) -> float:
        """Host (CPU) time: flop-bound at the machine's host throughput."""
        if flops < 0 or nbytes < 0:
            raise ValueError("flops and bytes must be non-negative")
        return max(flops / self.machine.host_flops_per_s, nbytes / self.machine.host_bw)

    def host_transfer(self, nbytes: float) -> float:
        """Moving ``nbytes`` between host DRAM and a device (PCIe-class link)."""
        if nbytes < 0:
            raise ValueError("bytes must be non-negative")
        return nbytes / self.machine.host_bw
