"""Process grids: 1D and 1.5D rank layouts.

The paper's Graph Partitioned algorithm arranges ``p`` processes as a
``p/c x c`` grid (section 5.2): each *process row* ``P(i, :)`` holds ``c``
replicas of block row ``i``, and each *process column* ``P(:, j)`` holds one
copy of every block row.  The feature all-to-allv of the pipeline runs over
process columns (section 6.2).

Ranks are laid out row-major (``rank = i * c + j``) so that for ``c`` up to
the node width a replication group lives inside one node, matching how one
would place replicas on Perlmutter.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProcessGrid"]


@dataclass(frozen=True)
class ProcessGrid:
    """A ``p/c x c`` grid over ranks ``0 .. p-1``.

    ``c = 1`` degenerates to the plain 1D block-row layout used by the
    Graph Replicated algorithm.
    """

    p: int
    c: int

    def __post_init__(self) -> None:
        if self.p <= 0 or self.c <= 0:
            raise ValueError(
                f"invalid process grid p={self.p}, c={self.c}: the process "
                f"count (--p) and the replication factor (--c) must both "
                f"be positive"
            )
        if self.p % self.c != 0:
            raise ValueError(
                f"invalid process grid p={self.p}, c={self.c}: the "
                f"replication factor (--c) must divide the process count "
                f"(--p) — the p ranks form a p/c x c grid; try --c 1 or a "
                f"divisor of {self.p}"
            )

    @property
    def n_rows(self) -> int:
        """Number of process rows (= number of block rows, p/c)."""
        return self.p // self.c

    def coords(self, rank: int) -> tuple[int, int]:
        """(process row, process column) of a rank."""
        if not 0 <= rank < self.p:
            raise ValueError(f"rank {rank} out of range for p={self.p}")
        return rank // self.c, rank % self.c

    def rank(self, i: int, j: int) -> int:
        """Rank at grid position ``(i, j)``."""
        if not (0 <= i < self.n_rows and 0 <= j < self.c):
            raise ValueError(f"grid position ({i}, {j}) out of range")
        return i * self.c + j

    def row_ranks(self, i: int) -> list[int]:
        """Ranks of process row ``P(i, :)`` — the replication group of block ``i``."""
        return [self.rank(i, j) for j in range(self.c)]

    def col_ranks(self, j: int) -> list[int]:
        """Ranks of process column ``P(:, j)`` — one replica of every block."""
        return [self.rank(i, j) for i in range(self.n_rows)]

    def all_ranks(self) -> list[int]:
        return list(range(self.p))
