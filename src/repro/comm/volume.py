"""Communication-volume ledger.

Records every byte each rank sends and receives, split by phase.  The
analytic-model benchmark (``bench_comm_model``) compares these measured
volumes against the paper's closed-form ``T_prob`` terms (section 5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["VolumeLedger"]


@dataclass
class _PhaseVolume:
    sent: float = 0.0
    received: float = 0.0
    messages: int = 0


@dataclass
class VolumeLedger:
    """Per-(phase, rank) accounting of communicated bytes."""

    world_size: int
    _records: dict[tuple[str, int], _PhaseVolume] = field(default_factory=dict)

    def _slot(self, phase: str, rank: int) -> _PhaseVolume:
        key = (phase, rank)
        if key not in self._records:
            self._records[key] = _PhaseVolume()
        return self._records[key]

    def record_send(self, phase: str, rank: int, nbytes: float, messages: int = 1) -> None:
        slot = self._slot(phase, rank)
        slot.sent += nbytes
        slot.messages += messages

    def record_recv(self, phase: str, rank: int, nbytes: float) -> None:
        self._slot(phase, rank).received += nbytes

    # -------------------------------------------------------------- #
    # Readout
    # -------------------------------------------------------------- #
    def sent(self, phase: str | None = None, rank: int | None = None) -> float:
        """Total bytes sent, optionally filtered by phase and/or rank."""
        return sum(
            v.sent
            for (ph, r), v in self._records.items()
            if (phase is None or ph == phase) and (rank is None or r == rank)
        )

    def received(self, phase: str | None = None, rank: int | None = None) -> float:
        """Total bytes received, with the same filters."""
        return sum(
            v.received
            for (ph, r), v in self._records.items()
            if (phase is None or ph == phase) and (rank is None or r == rank)
        )

    def messages(self, phase: str | None = None, rank: int | None = None) -> int:
        """Total message count, with the same filters."""
        return sum(
            v.messages
            for (ph, r), v in self._records.items()
            if (phase is None or ph == phase) and (rank is None or r == rank)
        )

    def phases(self) -> list[str]:
        """Phases observed so far, sorted."""
        return sorted({ph for ph, _ in self._records})

    def reset(self) -> None:
        self._records.clear()
