"""The simulated communicator: collectives with alpha-beta charged clocks.

Distributed algorithms in this codebase are written SPMD-as-orchestration:
single-threaded code holds every rank's local state in a list and calls one
of these collectives with all ranks' payloads at once.  Each call

* synchronizes the participating ranks (bulk-synchronous semantics),
* charges each rank's clock per the :class:`~repro.comm.cost_model.CostModel`,
* records bytes moved in the :class:`~repro.comm.volume.VolumeLedger`,
* returns the values each rank would hold afterwards.

Returned payloads may alias the inputs — simulated ranks must treat received
payloads as read-only (as real NCCL receive buffers effectively are here).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..config import MachineConfig, PERLMUTTER_LIKE
from ..sparse import CSRMatrix
from .clock import SimClock
from .cost_model import CostModel, Unscaled, payload_nbytes
from .volume import VolumeLedger

__all__ = ["Communicator"]


def _default_reduce(values: Sequence[object]) -> object:
    """Element-wise sum for ndarrays, numbers and CSR matrices."""
    first = values[0]
    if isinstance(first, np.ndarray):
        return np.sum(np.stack(values, axis=0), axis=0)
    if isinstance(first, CSRMatrix):
        acc = first
        for v in values[1:]:
            acc = acc.add(v)
        return acc
    return sum(values)


class Communicator:
    """Simulated world of ``world_size`` ranks on one machine model.

    ``work_scale`` linearly scales every payload size, flop count and byte
    count (but *not* kernel-launch counts) before costs are charged.  It is
    how sim-scale workloads are charged at paper-scale magnitudes: a graph
    generated at 1/S of the paper's size, driven with ``work_scale=S``,
    produces the paper's cost balance between fixed per-kernel overheads
    (scale-independent, the bulk-amortization term) and scalable
    compute/communication work.
    """

    def __init__(
        self,
        world_size: int,
        machine: MachineConfig = PERLMUTTER_LIKE,
        *,
        work_scale: float = 1.0,
    ) -> None:
        if work_scale <= 0:
            raise ValueError(f"work_scale must be positive, got {work_scale}")
        self.world_size = world_size
        self.clock = SimClock(world_size)
        self.cost = CostModel(machine)
        self.ledger = VolumeLedger(world_size)
        self.work_scale = float(work_scale)

    def _nbytes(self, payload: object) -> float:
        """Wire size of a payload, scaled to paper magnitude.

        :class:`~repro.comm.cost_model.Unscaled` wrappers opt out of the
        scaling (payloads already at true size, e.g. model gradients).
        """
        if isinstance(payload, Unscaled):
            return payload_nbytes(payload.payload)
        return payload_nbytes(payload) * self.work_scale

    # -------------------------------------------------------------- #
    # Conveniences
    # -------------------------------------------------------------- #
    def phase(self, name: str):
        """Open a named phase for time/volume attribution."""
        return self.clock.phase(name)

    def compute(
        self, rank: int, flops: float = 0.0, nbytes: float = 0.0, kernels: int = 1
    ) -> None:
        """Charge ``rank`` for device kernels under the roofline model."""
        self.clock.advance(
            rank,
            self.cost.compute(
                flops * self.work_scale, nbytes * self.work_scale, kernels
            ),
            "compute",
        )

    def host_compute(self, rank: int, flops: float = 0.0, nbytes: float = 0.0) -> None:
        """Charge ``rank`` for host-side (CPU) computation."""
        self.clock.advance(
            rank,
            self.cost.host_compute(flops * self.work_scale, nbytes * self.work_scale),
            "compute",
        )

    def host_transfer(self, rank: int, nbytes: float) -> None:
        """Charge ``rank`` for a host<->device transfer (PCIe-class)."""
        self.clock.advance(
            rank, self.cost.host_transfer(nbytes * self.work_scale), "comm"
        )

    def _check_group(self, ranks: Sequence[int]) -> None:
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"duplicate ranks in group {ranks}")
        if any(r < 0 or r >= self.world_size for r in ranks):
            raise ValueError(f"rank out of range in group {ranks}")

    # -------------------------------------------------------------- #
    # Collectives
    # -------------------------------------------------------------- #
    def bcast(self, value: object, ranks: Sequence[int], root_pos: int = 0) -> object:
        """Broadcast ``value`` from ``ranks[root_pos]`` to the group."""
        self._check_group(ranks)
        nbytes = self._nbytes(value)
        self.clock.barrier(ranks)
        dt = self.cost.bcast(ranks, nbytes)
        phase = self.clock.current_phase
        for pos, r in enumerate(ranks):
            self.clock.advance(r, dt, "comm")
            if pos == root_pos:
                self.ledger.record_send(phase, r, nbytes * (len(ranks) - 1), len(ranks) - 1)
            else:
                self.ledger.record_recv(phase, r, nbytes)
        return value

    def allreduce(
        self,
        values: Sequence[object],
        ranks: Sequence[int],
        op: Callable[[Sequence[object]], object] = _default_reduce,
    ) -> object:
        """All-reduce the per-rank ``values``; every rank gets the result."""
        self._check_group(ranks)
        if len(values) != len(ranks):
            raise ValueError("one value per participating rank required")
        nbytes = max(self._nbytes(v) for v in values)
        self.clock.barrier(ranks)
        dt = self.cost.allreduce(ranks, nbytes)
        phase = self.clock.current_phase
        g = len(ranks)
        ring_bytes = 2 * nbytes * (g - 1) / g if g > 1 else 0.0
        for r in ranks:
            self.clock.advance(r, dt, "comm")
            self.ledger.record_send(phase, r, ring_bytes, 2 * (g - 1))
            self.ledger.record_recv(phase, r, ring_bytes)
        return op(list(values))

    def gather(
        self, values: Sequence[object], ranks: Sequence[int], root_pos: int = 0
    ) -> list[object]:
        """Gather per-rank ``values`` onto ``ranks[root_pos]``."""
        self._check_group(ranks)
        if len(values) != len(ranks):
            raise ValueError("one value per participating rank required")
        sizes = [self._nbytes(v) for v in values]
        # Order sizes so the root contributes nothing to the wire.
        wire = [sizes[root_pos]] + [s for i, s in enumerate(sizes) if i != root_pos]
        self.clock.barrier(ranks)
        dt = self.cost.gather(ranks, wire)
        phase = self.clock.current_phase
        for pos, r in enumerate(ranks):
            self.clock.advance(r, dt, "comm")
            if pos == root_pos:
                self.ledger.record_recv(phase, r, sum(wire[1:]))
            else:
                self.ledger.record_send(phase, r, sizes[pos], 1)
        return list(values)

    def allgather(
        self, values: Sequence[object], ranks: Sequence[int]
    ) -> list[object]:
        """All-gather: every rank receives every rank's value, in group order."""
        self._check_group(ranks)
        if len(values) != len(ranks):
            raise ValueError("one value per participating rank required")
        sizes = [self._nbytes(v) for v in values]
        self.clock.barrier(ranks)
        dt = self.cost.allgather(ranks, sizes)
        phase = self.clock.current_phase
        total = sum(sizes)
        for pos, r in enumerate(ranks):
            self.clock.advance(r, dt, "comm")
            self.ledger.record_send(phase, r, sizes[pos] * (len(ranks) - 1), len(ranks) - 1)
            self.ledger.record_recv(phase, r, total - sizes[pos])
        return list(values)

    def alltoallv(
        self, send: Sequence[Sequence[object]], ranks: Sequence[int]
    ) -> list[list[object]]:
        """Personalized all-to-all: ``send[i][j]`` goes from group position
        ``i`` to position ``j``.  Returns ``recv`` with ``recv[j][i] ==
        send[i][j]``.  Each rank is charged for its own send/receive volume,
        then the group synchronizes (bulk-synchronous step).
        """
        self._check_group(ranks)
        g = len(ranks)
        if len(send) != g or any(len(row) != g for row in send):
            raise ValueError(f"send must be a {g}x{g} payload matrix")
        sizes = [[self._nbytes(send[i][j]) for j in range(g)] for i in range(g)]
        self.clock.barrier(ranks)
        phase = self.clock.current_phase
        for pos, r in enumerate(ranks):
            sent = sum(sizes[pos][j] for j in range(g) if j != pos)
            received = sum(sizes[i][pos] for i in range(g) if i != pos)
            dt = self.cost.alltoallv_rank(r, ranks, sent, received)
            self.clock.advance(r, dt, "comm")
            self.ledger.record_send(phase, r, sent, g - 1)
            self.ledger.record_recv(phase, r, received)
        self.clock.barrier(ranks)
        return [[send[i][j] for i in range(g)] for j in range(g)]

    def scatterv(
        self,
        payloads: Sequence[object],
        ranks: Sequence[int],
        root_pos: int = 0,
    ) -> list[object]:
        """Personalized scatter: the root sends ``payloads[i]`` to group
        position ``i``.  The root's sends overlap in latency (ISend) but
        serialize on its injection bandwidth; each receiver pays one
        message.  This models Algorithm 2's row-data distribution.
        """
        self._check_group(ranks)
        if len(payloads) != len(ranks):
            raise ValueError("one payload per participating rank required")
        root = ranks[root_pos]
        sizes = [self._nbytes(v) for v in payloads]
        self.clock.barrier(ranks)
        phase = self.clock.current_phase
        total_sent = sum(s for i, s in enumerate(sizes) if i != root_pos)
        link = self.cost._group_link(ranks)
        self.clock.advance(root, link.alpha + link.beta * total_sent, "comm")
        self.ledger.record_send(phase, root, total_sent, len(ranks) - 1)
        for pos, r in enumerate(ranks):
            if pos == root_pos:
                continue
            self.clock.advance(r, link.alpha + link.beta * sizes[pos], "comm")
            self.ledger.record_recv(phase, r, sizes[pos])
        return list(payloads)

    def p2p(self, src: int, dst: int, payload: object) -> object:
        """Blocking send/receive of one payload between two ranks."""
        self._check_group([src, dst]) if src != dst else None
        if src == dst:
            return payload
        nbytes = self._nbytes(payload)
        self.clock.barrier([src, dst])
        dt = self.cost.p2p(src, dst, nbytes)
        phase = self.clock.current_phase
        for r in (src, dst):
            self.clock.advance(r, dt, "comm")
        self.ledger.record_send(phase, src, nbytes, 1)
        self.ledger.record_recv(phase, dst, nbytes)
        return payload
