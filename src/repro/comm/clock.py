"""Per-rank simulated clocks with phase accounting.

The simulator executes distributed algorithms single-threaded but tracks a
separate clock per rank.  Bulk-synchronous steps (the paper's pipeline runs
bulk-synchronously, section 6) synchronize all participants to the latest
clock before advancing.

Every advance is attributed to the currently open *phase* (e.g. "sampling",
"feature_fetch", "propagation"), which is how the benchmark harness produces
the stacked-bar breakdowns of the paper's Figures 4, 6 and 7.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator, Sequence

__all__ = ["SimClock"]


class SimClock:
    """Simulated time for ``world_size`` ranks, split by phase and kind."""

    def __init__(self, world_size: int) -> None:
        if world_size <= 0:
            raise ValueError(f"world_size must be positive, got {world_size}")
        self.world_size = world_size
        self._time = [0.0] * world_size
        # (phase, kind) -> per-rank accumulated seconds; kind is
        # "compute" or "comm" so Figure 7's comm/comp split falls out.
        self._phase_time: dict[tuple[str, str], list[float]] = defaultdict(
            lambda: [0.0] * world_size
        )
        self._phase_stack: list[str] = []

    # -------------------------------------------------------------- #
    # Phases
    # -------------------------------------------------------------- #
    @property
    def current_phase(self) -> str:
        return self._phase_stack[-1] if self._phase_stack else "unattributed"

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all advances inside the block to phase ``name``."""
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()

    # -------------------------------------------------------------- #
    # Time manipulation
    # -------------------------------------------------------------- #
    def advance(self, rank: int, dt: float, kind: str = "compute") -> None:
        """Move ``rank``'s clock forward ``dt`` seconds in the open phase."""
        if dt < 0:
            raise ValueError(f"cannot advance time by {dt}")
        if kind not in ("compute", "comm"):
            raise ValueError(f"kind must be 'compute' or 'comm', got {kind!r}")
        self._time[rank] += dt
        self._phase_time[(self.current_phase, kind)][rank] += dt

    def barrier(self, ranks: Sequence[int] | None = None) -> float:
        """Synchronize ranks to the maximum clock among them; returns it."""
        ranks = range(self.world_size) if ranks is None else ranks
        t = max(self._time[r] for r in ranks)
        for r in ranks:
            self._time[r] = t
        return t

    # -------------------------------------------------------------- #
    # Readout
    # -------------------------------------------------------------- #
    def time(self, rank: int) -> float:
        """Current simulated time of one rank."""
        return self._time[rank]

    def elapsed(self) -> float:
        """Makespan: the latest clock across all ranks."""
        return max(self._time)

    def phase_seconds(self, phase: str, kind: str | None = None) -> float:
        """Max-over-ranks seconds attributed to ``phase`` (optionally one kind).

        Max over ranks matches how the paper reports bulk-synchronous phase
        times: the slowest participant determines the phase's wall time.
        """
        total = [0.0] * self.world_size
        for (ph, k), per_rank in self._phase_time.items():
            if ph == phase and (kind is None or k == kind):
                total = [a + b for a, b in zip(total, per_rank)]
        return max(total)

    def breakdown(self) -> dict[str, float]:
        """Phase -> max-over-ranks seconds, for reporting."""
        phases = {ph for ph, _ in self._phase_time}
        return {ph: self.phase_seconds(ph) for ph in sorted(phases)}

    def breakdown_by_kind(self) -> dict[tuple[str, str], float]:
        """(phase, kind) -> max-over-ranks seconds."""
        return {
            key: max(per_rank) for key, per_rank in sorted(self._phase_time.items())
        }

    def reset(self) -> None:
        """Zero every clock and all phase accounting."""
        self._time = [0.0] * self.world_size
        self._phase_time.clear()

    @classmethod
    def merged(cls, clocks: Sequence["SimClock"]) -> "SimClock":
        """Concatenate per-server clocks into one fleet-wide clock.

        Each input clock's ranks become consecutive ranks of the merged
        clock, so :meth:`elapsed` is the fleet makespan and
        :meth:`breakdown` reports each phase as the *slowest server's*
        seconds — the same max-over-participants convention the
        bulk-synchronous phase reporting uses.
        """
        if not clocks:
            raise ValueError("need at least one clock to merge")
        total = sum(c.world_size for c in clocks)
        merged = cls(total)
        offset = 0
        for c in clocks:
            for r in range(c.world_size):
                merged._time[offset + r] = c._time[r]
            for key, per_rank in c._phase_time.items():
                slot = merged._phase_time[key]
                for r, dt in enumerate(per_rank):
                    slot[offset + r] = dt
            offset += c.world_size
        return merged
