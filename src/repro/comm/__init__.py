"""Simulated distributed runtime: per-rank clocks, alpha-beta collectives,
process grids and communication-volume accounting.

This substrate stands in for the paper's 128-GPU NCCL deployment: all
communication and compute costs are charged to per-rank simulated clocks
through the same alpha-beta/roofline models the paper's analysis uses.
"""

from .clock import SimClock
from .collectives import Communicator
from .cost_model import CostModel, Unscaled, payload_nbytes
from .grid import ProcessGrid
from .volume import VolumeLedger

__all__ = [
    "SimClock",
    "Communicator",
    "CostModel",
    "Unscaled",
    "payload_nbytes",
    "ProcessGrid",
    "VolumeLedger",
]
