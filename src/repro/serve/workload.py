"""Request sources for the serving engine: traces and closed-loop clients.

A *workload* feeds :meth:`~repro.serve.engine.ServingEngine.process`:

* :class:`TraceWorkload` — open loop: a fixed list of requests with
  pre-assigned arrival times (optionally loaded from / saved to JSON, the
  format the ``repro serve --requests trace.json`` CLI consumes).
* :class:`ClosedLoopWorkload` — a closed-loop load generator: ``clients``
  concurrent callers, each keeping exactly one request in flight and
  issuing its next one ``think_time`` after the previous response.
  Sweeping ``clients`` sweeps the offered load — the axis
  ``benchmarks/bench_serving.py`` plots latency/throughput against.

Both are deterministic: target vertices come from a seeded generator and
new arrivals depend only on simulated completion times.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

import numpy as np

from .request import InferenceRequest, InferenceResult

__all__ = ["TraceWorkload", "ClosedLoopWorkload", "load_trace", "save_trace"]


class TraceWorkload:
    """Open-loop workload: requests arrive per the trace, come what may."""

    #: Open-loop workloads submit everything up front and never react to
    #: completions — the property that lets the parallel fleet run each
    #: replica's timeline in its own process (:mod:`repro.parallel.fleet`).
    open_loop = True

    def __init__(self, requests: Sequence[InferenceRequest]) -> None:
        self.requests = list(requests)

    def initial(self) -> list[InferenceRequest]:
        return list(self.requests)

    def on_complete(self, result: InferenceResult) -> list[InferenceRequest]:
        return []

    @classmethod
    def synthetic(
        cls,
        n_requests: int,
        vertex_pool: np.ndarray,
        *,
        seed: int = 0,
        interarrival: float = 1e-4,
        max_vertices: int = 1,
    ) -> "TraceWorkload":
        """A deterministic synthetic trace: fixed interarrival gap, target
        vertices drawn per-request from ``vertex_pool`` by a seeded rng."""
        if n_requests <= 0:
            raise ValueError("need at least one request")
        if interarrival < 0:
            raise ValueError("interarrival must be non-negative")
        pool = np.asarray(vertex_pool, dtype=np.int64)
        if pool.size == 0:
            raise ValueError("vertex pool is empty")
        rng = np.random.default_rng(np.random.SeedSequence([seed, 211]))
        requests = []
        for i in range(n_requests):
            size = 1 if max_vertices <= 1 else int(rng.integers(1, max_vertices + 1))
            verts = rng.choice(pool, size=min(size, pool.size), replace=False)
            requests.append(
                InferenceRequest(rid=i, vertices=verts, arrival=i * interarrival)
            )
        return cls(requests)


class ClosedLoopWorkload:
    """Closed-loop load generator: one outstanding request per client."""

    #: Closed-loop clients issue requests from completions, coupling the
    #: fleet's replica timelines — the parallel fleet path refuses this.
    open_loop = False

    def __init__(
        self,
        n_requests: int,
        vertex_pool: np.ndarray,
        *,
        clients: int = 8,
        think_time: float = 0.0,
        seed: int = 0,
        max_vertices: int = 1,
    ) -> None:
        if n_requests <= 0:
            raise ValueError("need at least one request")
        if clients <= 0:
            raise ValueError("need at least one client")
        if think_time < 0:
            raise ValueError("think_time must be non-negative")
        self.n_requests = n_requests
        self.clients = min(clients, n_requests)
        self.think_time = think_time
        self.max_vertices = max_vertices
        self.pool = np.asarray(vertex_pool, dtype=np.int64)
        if self.pool.size == 0:
            raise ValueError("vertex pool is empty")
        self._rng = np.random.default_rng(np.random.SeedSequence([seed, 223]))
        self._issued = 0

    def _make(self, arrival: float) -> InferenceRequest:
        size = (
            1
            if self.max_vertices <= 1
            else int(self._rng.integers(1, self.max_vertices + 1))
        )
        verts = self._rng.choice(
            self.pool, size=min(size, self.pool.size), replace=False
        )
        req = InferenceRequest(rid=self._issued, vertices=verts, arrival=arrival)
        self._issued += 1
        return req

    def initial(self) -> list[InferenceRequest]:
        return [self._make(0.0) for _ in range(self.clients)]

    def on_complete(self, result: InferenceResult) -> list[InferenceRequest]:
        if self._issued >= self.n_requests:
            return []
        return [self._make(result.completed + self.think_time)]


def load_trace(path: str | Path) -> TraceWorkload:
    """Read a JSON trace: a list of ``{"arrival": t, "vertices": [...]}``
    objects (or ``{"requests": [...]}`` wrapping the same list)."""
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict):
        data = data.get("requests")
    if not isinstance(data, list) or not data:
        raise ValueError(f"trace {path} holds no requests")
    requests = []
    for i, entry in enumerate(data):
        requests.append(
            InferenceRequest(
                rid=int(entry.get("rid", i)),
                vertices=np.asarray(entry["vertices"], dtype=np.int64),
                arrival=float(entry.get("arrival", 0.0)),
            )
        )
    return TraceWorkload(requests)


def save_trace(workload: TraceWorkload, path: str | Path) -> Path:
    """Write a :class:`TraceWorkload` as the JSON the CLI consumes."""
    path = Path(path)
    payload = [
        {
            "rid": req.rid,
            "arrival": req.arrival,
            "vertices": [int(v) for v in req.vertices],
        }
        for req in workload.requests
    ]
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
