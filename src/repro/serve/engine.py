"""The online serving engine: micro-batched ego-network inference.

:class:`ServingEngine` turns the repo's *offline* bulk-sampling machinery
into an online service.  Concurrent :class:`~repro.serve.request.InferenceRequest`\\ s
are coalesced by the :class:`~repro.serve.request.MicroBatcher` into one
micro-batch, the micro-batch's (deduplicated) target vertices are compiled
through the existing sampling-plan IR (:mod:`repro.core.plan`, interpreted
by the same :class:`~repro.core.plan.LocalExecutor` training uses), and the
:class:`~repro.gnn.GNNModel` produces one logits row per target.  That is
the paper's bulk-amortization argument replayed at serving time: one
micro-batch costs one plan's worth of kernel launches no matter how many
requests share it.

The compute itself lives in :class:`~repro.serve.replica.Replica` — the
engine is the *control loop* for exactly one replica: it owns the workload
queue, decides dispatch times, and interleaves streaming graph updates.
(The multi-replica control loop over the same Replica core is
:class:`~repro.serve.cluster.ServingCluster`.)

Two serving modes:

* **exact** (default, ``fanout=None``) — every hop keeps the *full*
  neighborhood (a node-wise plan whose SAMPLE count is the graph's max
  in-degree), so the served logits are **bit-identical** to
  :func:`~repro.pipeline.layerwise_inference` for the same vertices.  Both
  paths run the convolutions' row-stable ``infer`` kernels, which is what
  makes the equality exact rather than approximate.  In this mode the
  :class:`~repro.serve.cache.EmbeddingCache` can memoize penultimate-layer
  rows for hot vertices (``embed_budget``) without changing a single bit.
* **sampled** (an explicit ``fanout``) — compiles micro-batches through
  the engine's *configured* sampler at that fanout: approximate logits,
  lower latency, any registered sampler/kernel backend.  The embedding
  cache stays off (sampled representations are not memoizable values).

All time is simulated: service time comes from the machine's roofline
:class:`~repro.comm.cost_model.CostModel` and accumulates on a
:class:`~repro.comm.clock.SimClock` under ``sampling`` / ``propagation`` /
``embedding_cache`` phases, so admission, batching and p50/p95/p99 latency
are exactly reproducible.

**Streaming graphs.**  Built over a
:class:`~repro.stream.StreamingGraph`, the engine also consumes workloads
that interleave :class:`~repro.stream.EdgeBatch` mutations with requests
(:class:`~repro.stream.UpdateStream`).  An update due before the next
micro-batch's dispatch is applied first — delta-log merge, threshold
compaction and the dirty-vertex invalidation of the embedding cache all
charge the same clock under a ``graph_update`` phase — so every request is
served on the graph as of its dispatch time and logits stay bit-identical
to layer-wise inference on the *current* adjacency.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..gnn.model import GNNModel
from ..graphs import Graph
from ..obs.metrics import get_registry
from .cache import ServeStats
from .replica import Replica
from .request import InferenceRequest, InferenceResult, RequestQueue

__all__ = ["ServingEngine", "ServeReport"]


@dataclass
class ServeReport:
    """Everything one :meth:`ServingEngine.process` run produced."""

    results: list[InferenceResult]
    batches: int
    phase_seconds: dict[str, float]
    cache_stats: ServeStats | None = None
    exact: bool = True
    # Streaming runs only: snapshot of the StreamingGraph's counters
    # (update batches, applied/skipped edits, compactions, dirty vertices).
    update_stats: object | None = None
    # Fleet runs only: requests dropped by admission control, replica
    # counts over time ([(sim_time, n_replicas)] autoscaler trace), and
    # per-replica request counts keyed by replica id.
    shed: int = 0
    replica_trace: list[tuple[float, int]] = field(default_factory=list)
    per_replica: dict[int, int] = field(default_factory=dict)

    @property
    def n_requests(self) -> int:
        return len(self.results)

    @property
    def latencies(self) -> np.ndarray:
        """Per-request end-to-end latency, in request-id order."""
        return np.array([r.latency for r in self.results])

    @property
    def makespan(self) -> float:
        """Completion time of the last request."""
        return max((r.completed for r in self.results), default=0.0)

    @property
    def throughput(self) -> float:
        """Requests served per simulated second."""
        span = self.makespan
        return self.n_requests / span if span > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.n_requests / self.batches if self.batches else 0.0

    def latency_summary(self) -> dict[str, float]:
        """n / mean / p50 / p95 / p99 / max of the request latencies."""
        from ..bench.reporting import latency_summary

        return latency_summary(self.latencies)

    def digest(self) -> str:
        """SHA-256 over (rid, vertices, logits) of every result.

        Bit-exact serving makes this digest stable across runs, batch
        sizes, wait policies and cache budgets — the CI smoke job pins it
        per run pair rather than per platform.
        """
        h = hashlib.sha256()
        for r in sorted(self.results, key=lambda r: r.request.rid):
            h.update(np.int64(r.request.rid).tobytes())
            h.update(np.ascontiguousarray(r.request.vertices).tobytes())
            h.update(np.ascontiguousarray(r.logits).tobytes())
        return h.hexdigest()

    def publish(self, registry, **labels) -> None:
        """Publish this report into a metrics registry
        (:mod:`repro.obs.metrics`) without touching any public field.

        Counters/gauges for the run totals and phase seconds, a latency
        histogram over the per-request latencies, and the nested
        cache/stream counters via their own ``publish`` hooks.
        """
        registry.counter(
            "serve_requests_total", "inference requests served", **labels
        ).inc(self.n_requests)
        registry.counter(
            "serve_batches_total", "micro-batches dispatched", **labels
        ).inc(self.batches)
        registry.gauge(
            "serve_throughput_req_per_s", "requests per simulated second",
            **labels,
        ).set(self.throughput)
        hist = registry.histogram(
            "serve_latency_seconds", "end-to-end request latency (simulated)",
            **labels,
        )
        for latency in self.latencies:
            hist.observe(float(latency))
        for phase, seconds in self.phase_seconds.items():
            registry.counter(
                "serve_phase_seconds_total", "simulated seconds by phase",
                phase=phase, **labels,
            ).inc(seconds)
        if self.shed:
            registry.counter(
                "serve_shed_total", "inference requests shed by admission",
                **labels,
            ).set(self.shed)
        if self.cache_stats is not None:
            self.cache_stats.publish(registry, **labels)
        if self.update_stats is not None and hasattr(self.update_stats, "publish"):
            self.update_stats.publish(registry, **labels)

    def row(self) -> dict[str, object]:
        """One reporting row for :func:`repro.bench.format_table`."""
        s = self.latency_summary()
        out: dict[str, object] = {
            "requests": self.n_requests,
            "batches": self.batches,
            "mean_batch": round(self.mean_batch_size, 3),
            "p50_ms": s["p50"] * 1e3,
            "p95_ms": s["p95"] * 1e3,
            "p99_ms": s["p99"] * 1e3,
            "req_per_s": self.throughput,
        }
        if self.cache_stats is not None:
            out["embed_hit"] = f"{self.cache_stats.hit_rate:.1%}"
            if self.cache_stats.invalidations:
                out["invalidated"] = self.cache_stats.invalidations
        if self.shed:
            out["shed"] = self.shed
        if self.update_stats is not None:
            out.update(self.update_stats.row())
        return out


class ServingEngine:
    """Serve logits for target vertices with micro-batched bulk sampling.

    ``config`` supplies the serving knobs (``serve_batch_size``,
    ``serve_max_wait``, ``embed_budget``), the kernel backend, the machine
    model and the seed.  ``fanout=None`` selects the exact full-neighborhood
    mode; a tuple of per-layer counts selects sampled serving through the
    configured sampler (its length must match the model depth).

    The engine is the single-server control loop over one
    :class:`~repro.serve.replica.Replica`; compute, caches and the phase
    clock live on the replica and are re-exported here for compatibility.
    """

    def __init__(
        self,
        model: GNNModel,
        graph: Graph,
        config,
        *,
        fanout: Sequence[int] | None = None,
        stream=None,
    ) -> None:
        if stream is not None:
            graph = stream.graph
        self.stream = stream
        self.replica = Replica(model, graph, config, fanout=fanout)

    # ------------------------------------------------------------------ #
    # Compatibility surface: the pre-fleet engine exposed its internals
    # directly; tests, benchmarks and examples reach for these.
    # ------------------------------------------------------------------ #
    @property
    def model(self):
        return self.replica.model

    @property
    def graph(self):
        return self.replica.graph

    @property
    def config(self):
        return self.replica.config

    @property
    def clock(self):
        return self.replica.clock

    @property
    def cost(self):
        return self.replica.cost

    @property
    def exact(self) -> bool:
        return self.replica.exact

    @property
    def fanout(self):
        return self.replica.fanout

    @property
    def sampler(self):
        return self.replica.sampler

    @property
    def prob_cache(self):
        return self.replica.prob_cache

    @property
    def cache(self):
        return self.replica.cache

    @property
    def batcher(self):
        return self.replica.batcher

    # ------------------------------------------------------------------ #
    # Graph updates (streaming serving)
    # ------------------------------------------------------------------ #
    def apply_update(self, batch, at: float | None = None) -> float:
        """Apply one :class:`~repro.stream.EdgeBatch`; returns sim seconds.

        Runs the full protocol: absorb the batch into the delta log (and
        maybe compact) — once, on the shared :class:`StreamingGraph` — then
        have the replica absorb the result: refresh the exact-mode fanout,
        drop stale probability matrices, and invalidate reachable cached
        embeddings, all charged to the clock under ``graph_update``.
        ``at`` is the workload time the absorb starts, used only to place
        the replica's trace span on the workload timeline.
        """
        if self.stream is None:
            raise ValueError(
                "this engine serves a frozen graph; build it over a "
                "StreamingGraph (Engine.serving with stream_updates=True) "
                "to apply edge updates"
            )
        result = self.stream.apply(batch)
        return self.replica.absorb_update(result, at=at)

    # ------------------------------------------------------------------ #
    # Serving entry points
    # ------------------------------------------------------------------ #
    def serve(self, vertices: np.ndarray) -> np.ndarray:
        """One-shot serving (no queueing): logits aligned with ``vertices``."""
        vertices = np.asarray(vertices, dtype=np.int64)
        targets = np.unique(vertices)
        rng = np.random.default_rng(
            np.random.SeedSequence([self.config.seed, 401])
        )
        logits = self.replica.logits_for(targets, rng)
        return logits[np.searchsorted(targets, vertices)]

    def process(self, workload) -> ServeReport:
        """Run a workload to exhaustion under the micro-batching policy.

        ``workload`` provides ``initial() -> [requests]`` and
        ``on_complete(result) -> [requests]`` (see :mod:`repro.serve.workload`).
        A workload may additionally provide ``updates() -> [EdgeBatch]``
        (:class:`~repro.stream.UpdateStream`): an update whose arrival
        precedes the next micro-batch's dispatch time is applied first —
        the server is busy for the update's simulated duration, and the
        dispatch decision is re-taken afterwards (more arrivals may have
        joined the batch).  Deterministic: dispatch times depend only on
        simulated arrivals, the policy, and simulated service times.

        Each call reports only its own run: the phase clock and the cache's
        hit/miss counters reset on entry (cached rows and LFU frequencies
        persist across calls, like the feature cache across epochs).
        """
        rep = self.replica
        rep.clock.reset()
        if rep.cache is not None:
            rep.cache.stats.reset()
        updates = list(workload.updates()) if hasattr(workload, "updates") else []
        if updates and self.stream is None:
            raise ValueError(
                "workload interleaves edge updates but this engine serves "
                "a frozen graph; build it with Engine.serving() under "
                "RunConfig(stream_updates=True) (or pass a StreamingGraph)"
            )
        queue = RequestQueue()
        for req in workload.initial():
            queue.push(req)
        results: list[InferenceResult] = []
        free = 0.0
        batch_index = 0
        next_update = 0
        while True:
            dispatch = rep.batcher.next_dispatch(queue, free)
            if dispatch is None:
                if next_update < len(updates):
                    # Requests drained first: apply the remaining churn.
                    at = max(free, updates[next_update].at)
                    free = at + self.apply_update(updates[next_update], at=at)
                    next_update += 1
                    continue
                break
            t, batch = dispatch
            if next_update < len(updates) and updates[next_update].at <= t:
                # The update is due before this batch would leave: put the
                # batch back (it stays the oldest pending work), apply the
                # update while the server would otherwise idle, and re-take
                # the dispatch decision at the new free time.
                queue.pending = batch + queue.pending
                at = max(free, updates[next_update].at)
                free = at + self.apply_update(updates[next_update], at=at)
                next_update += 1
                continue
            batch_results = rep.serve_batch(batch, t, batch_index)
            free = batch_results[0].completed
            results.extend(batch_results)
            for result in batch_results:
                for req in workload.on_complete(result):
                    queue.push(req)
            batch_index += 1
        results.sort(key=lambda r: r.request.rid)
        report = ServeReport(
            results=results,
            batches=batch_index,
            phase_seconds=rep.clock.breakdown(),
            # Snapshot, so a later process() reset can't mutate this report.
            cache_stats=(
                dataclasses.replace(rep.cache.stats)
                if rep.cache is not None
                else None
            ),
            exact=rep.exact,
            update_stats=(
                dataclasses.replace(self.stream.stats)
                if self.stream is not None and updates
                else None
            ),
        )
        registry = get_registry()
        if registry is not None:
            report.publish(registry)
            if rep.prob_cache is not None:
                rep.prob_cache.publish(registry)
        return report
