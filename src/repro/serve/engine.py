"""The online serving engine: micro-batched ego-network inference.

:class:`ServingEngine` turns the repo's *offline* bulk-sampling machinery
into an online service.  Concurrent :class:`~repro.serve.request.InferenceRequest`\\ s
are coalesced by the :class:`~repro.serve.request.MicroBatcher` into one
micro-batch, the micro-batch's (deduplicated) target vertices are compiled
through the existing sampling-plan IR (:mod:`repro.core.plan`, interpreted
by the same :class:`~repro.core.plan.LocalExecutor` training uses), and the
:class:`~repro.gnn.GNNModel` produces one logits row per target.  That is
the paper's bulk-amortization argument replayed at serving time: one
micro-batch costs one plan's worth of kernel launches no matter how many
requests share it.

Two serving modes:

* **exact** (default, ``fanout=None``) — every hop keeps the *full*
  neighborhood (a node-wise plan whose SAMPLE count is the graph's max
  in-degree), so the served logits are **bit-identical** to
  :func:`~repro.pipeline.layerwise_inference` for the same vertices.  Both
  paths run the convolutions' row-stable ``infer`` kernels, which is what
  makes the equality exact rather than approximate.  In this mode the
  :class:`~repro.serve.cache.EmbeddingCache` can memoize penultimate-layer
  rows for hot vertices (``embed_budget``) without changing a single bit.
* **sampled** (an explicit ``fanout``) — compiles micro-batches through
  the engine's *configured* sampler at that fanout: approximate logits,
  lower latency, any registered sampler/kernel backend.  The embedding
  cache stays off (sampled representations are not memoizable values).

All time is simulated: service time comes from the machine's roofline
:class:`~repro.comm.cost_model.CostModel` and accumulates on a
:class:`~repro.comm.clock.SimClock` under ``sampling`` / ``propagation`` /
``embedding_cache`` phases, so admission, batching and p50/p95/p99 latency
are exactly reproducible.

**Streaming graphs.**  Built over a
:class:`~repro.stream.StreamingGraph`, the engine also consumes workloads
that interleave :class:`~repro.stream.EdgeBatch` mutations with requests
(:class:`~repro.stream.UpdateStream`).  An update due before the next
micro-batch's dispatch is applied first — delta-log merge, threshold
compaction and the dirty-vertex invalidation of the embedding cache all
charge the same clock under a ``graph_update`` phase — so every request is
served on the graph as of its dispatch time and logits stay bit-identical
to layer-wise inference on the *current* adjacency.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..comm.clock import SimClock
from ..comm.cost_model import CostModel, payload_nbytes
from ..core.compile import ProbCache, optimize
from ..core.sage_sampler import SageSampler
from ..sparse.kernels import get_kernel
from ..gnn.model import GNNModel
from ..graphs import Graph
from .cache import EmbeddingCache, ServeStats
from .request import InferenceRequest, InferenceResult, MicroBatcher, RequestQueue

__all__ = ["ServingEngine", "ServeReport"]


@dataclass
class ServeReport:
    """Everything one :meth:`ServingEngine.process` run produced."""

    results: list[InferenceResult]
    batches: int
    phase_seconds: dict[str, float]
    cache_stats: ServeStats | None = None
    exact: bool = True
    # Streaming runs only: snapshot of the StreamingGraph's counters
    # (update batches, applied/skipped edits, compactions, dirty vertices).
    update_stats: object | None = None

    @property
    def n_requests(self) -> int:
        return len(self.results)

    @property
    def latencies(self) -> np.ndarray:
        """Per-request end-to-end latency, in request-id order."""
        return np.array([r.latency for r in self.results])

    @property
    def makespan(self) -> float:
        """Completion time of the last request."""
        return max((r.completed for r in self.results), default=0.0)

    @property
    def throughput(self) -> float:
        """Requests served per simulated second."""
        span = self.makespan
        return self.n_requests / span if span > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.n_requests / self.batches if self.batches else 0.0

    def latency_summary(self) -> dict[str, float]:
        """n / mean / p50 / p95 / p99 / max of the request latencies."""
        from ..bench.reporting import latency_summary

        return latency_summary(self.latencies)

    def digest(self) -> str:
        """SHA-256 over (rid, vertices, logits) of every result.

        Bit-exact serving makes this digest stable across runs, batch
        sizes, wait policies and cache budgets — the CI smoke job pins it
        per run pair rather than per platform.
        """
        h = hashlib.sha256()
        for r in sorted(self.results, key=lambda r: r.request.rid):
            h.update(np.int64(r.request.rid).tobytes())
            h.update(np.ascontiguousarray(r.request.vertices).tobytes())
            h.update(np.ascontiguousarray(r.logits).tobytes())
        return h.hexdigest()

    def row(self) -> dict[str, object]:
        """One reporting row for :func:`repro.bench.format_table`."""
        s = self.latency_summary()
        out: dict[str, object] = {
            "requests": self.n_requests,
            "batches": self.batches,
            "mean_batch": round(self.mean_batch_size, 3),
            "p50_ms": s["p50"] * 1e3,
            "p95_ms": s["p95"] * 1e3,
            "p99_ms": s["p99"] * 1e3,
            "req_per_s": self.throughput,
        }
        if self.cache_stats is not None:
            out["embed_hit"] = f"{self.cache_stats.hit_rate:.1%}"
            if self.cache_stats.invalidations:
                out["invalidated"] = self.cache_stats.invalidations
        if self.update_stats is not None:
            out.update(self.update_stats.row())
        return out


def _conv_in_dim(conv) -> int:
    for key in ("W", "W_neigh"):
        if key in conv.params:
            return conv.params[key].shape[0]
    raise TypeError(f"cannot infer input width of {type(conv).__name__}")


def _conv_out_dim(conv) -> int:
    for key in ("W", "W_neigh"):
        if key in conv.params:
            return conv.params[key].shape[1]
    raise TypeError(f"cannot infer output width of {type(conv).__name__}")


class ServingEngine:
    """Serve logits for target vertices with micro-batched bulk sampling.

    ``config`` supplies the serving knobs (``serve_batch_size``,
    ``serve_max_wait``, ``embed_budget``), the kernel backend, the machine
    model and the seed.  ``fanout=None`` selects the exact full-neighborhood
    mode; a tuple of per-layer counts selects sampled serving through the
    configured sampler (its length must match the model depth).
    """

    def __init__(
        self,
        model: GNNModel,
        graph: Graph,
        config,
        *,
        fanout: Sequence[int] | None = None,
        stream=None,
    ) -> None:
        if stream is not None:
            graph = stream.graph
        if graph.features is None:
            raise ValueError("serving needs node features")
        self.model = model
        self.graph = graph
        self.stream = stream
        self.config = config
        self.clock = SimClock(1)
        self.cost = CostModel(config.machine)
        self.exact = fanout is None
        n_layers = model.n_layers
        self._dims = [_conv_in_dim(c) for c in model.convs] + [
            _conv_out_dim(model.convs[-1])
        ]
        if self.exact:
            self.fanout = self._full_fanout()
            # Exactness needs the node-wise full-expansion plan: every dst
            # keeps its whole neighborhood and joins its own frontier.
            self.sampler = SageSampler(include_dst=True, kernel=config.kernel)
        else:
            fanout = tuple(int(s) for s in fanout)
            if len(fanout) != n_layers:
                raise ValueError(
                    f"serving fanout {fanout} has {len(fanout)} entries for "
                    f"a {n_layers}-layer model"
                )
            self.fanout = fanout
            from ..api.registries import make_sampler

            self.sampler = make_sampler(
                config.sampler, graph=graph, for_training=True,
                kernel=config.kernel,
            )
        # A compiled kernel backend (compiles_plans) runs fused plans and
        # can reuse probability matrices across micro-batches that share a
        # frontier — the serving-side payoff of the plan compiler.
        self._compiled = getattr(
            get_kernel(config.kernel), "compiles_plans", False
        )
        self.prob_cache: ProbCache | None = (
            ProbCache() if self._compiled else None
        )
        self.cache: EmbeddingCache | None = None
        if self.exact and n_layers > 1 and config.embed_budget > 0:
            self.cache = EmbeddingCache(
                graph.n, self._dims[-2], budget_bytes=config.embed_budget
            )
        self.batcher = MicroBatcher(config.serve_batch_size, config.serve_max_wait)

    def _full_fanout(self) -> tuple[int, ...]:
        """The per-layer count that keeps every neighborhood whole.

        Recomputed after each graph update: an insertion can raise the max
        in-degree, and exactness requires the SAMPLE cap to stay above it.
        """
        full = max(1, int(self.graph.adj.nnz_per_row().max()))
        return (full,) * self.model.n_layers

    # ------------------------------------------------------------------ #
    # Graph updates (streaming serving)
    # ------------------------------------------------------------------ #
    def apply_update(self, batch) -> float:
        """Apply one :class:`~repro.stream.EdgeBatch`; returns sim seconds.

        Runs the full protocol: absorb the batch into the delta log (and
        maybe compact), refresh the exact-mode fanout, and invalidate every
        cached embedding row the change can reach (``dirty_closure`` at
        depth ``L - 2`` on the post-update adjacency).  All of it is
        charged to the clock under the ``graph_update`` phase.
        """
        if self.stream is None:
            raise ValueError(
                "this engine serves a frozen graph; build it over a "
                "StreamingGraph (Engine.serving with stream_updates=True) "
                "to apply edge updates"
            )
        from ..stream.graph import dirty_closure

        before = self.clock.time(0)
        with self.clock.phase("graph_update"):
            result = self.stream.apply(batch)
            cost = result.sim_cost
            # Log absorb + dirty-row re-merge: hash/searchsorted per edge,
            # then a splice that rewrites the merged rows (16B/entry, r+w).
            self.clock.advance(
                0,
                self.cost.compute(
                    flops=64.0 * cost.get("batch_edges", 0.0),
                    nbytes=24.0 * cost.get("batch_edges", 0.0)
                    + 32.0 * cost.get("merged_nnz", 0.0),
                    kernels=2,
                ),
                "compute",
            )
            if result.compacted:
                # Compaction re-canonicalizes the full matrix: a global
                # sort (n log n flops) plus one read+write of every entry.
                nnz = cost.get("compacted_nnz", 0.0)
                self.clock.advance(
                    0,
                    self.cost.compute(
                        flops=8.0 * nnz * max(1.0, np.log2(max(nnz, 2.0))),
                        nbytes=32.0 * nnz,
                        kernels=4,
                    ),
                    "compute",
                )
            if self.exact:
                self.fanout = self._full_fanout()
            if self.prob_cache is not None:
                # Cached probability matrices were computed on the old
                # adjacency; every one of them is stale now.
                self.prob_cache.clear()
            if self.cache is not None and result.dirty_rows.size:
                stale = dirty_closure(
                    self.graph.adj, result.dirty_rows, self.model.n_layers - 2
                )
                dropped = self.cache.invalidate(stale)
                if dropped:
                    self.clock.advance(
                        0,
                        self.cost.compute(
                            nbytes=self.cache.row_bytes * dropped, kernels=1
                        ),
                        "compute",
                    )
        return self.clock.time(0) - before

    # ------------------------------------------------------------------ #
    # Cost accounting helpers
    # ------------------------------------------------------------------ #
    def _sample_bulk(self, batches, fanout, rng):
        """The engine's one bulk-sampling call site.

        Threads the probability cache through when the configured kernel
        compiles plans; interpreted backends get the plain call (their
        ``sample_bulk`` may be an override without the keyword).
        """
        if self.prob_cache is not None:
            return self.sampler.sample_bulk(
                self.graph.adj, batches, fanout, rng,
                prob_cache=self.prob_cache,
            )
        return self.sampler.sample_bulk(self.graph.adj, batches, fanout, rng)

    def _charge_sampling(self, layers) -> None:
        """One plan execution: fixed kernel launches + size-scaled work.

        The kernel count comes from the emitted plan (4 steps per layer for
        the node-wise program, 2 after the plan compiler fuses PROB+NORM
        and SAMPLE+EXTRACT), *not* from the number of coalesced requests —
        that independence is the micro-batching amortization.
        """
        program = self.sampler.plan(tuple(self.fanout[: len(layers)]))
        if program is not None and self._compiled:
            program = optimize(program)
        kernels = len(program.steps) if program is not None else 4 * len(layers)
        edges = sum(layer.adj.nnz for layer in layers)
        nbytes = 2.0 * payload_nbytes([layer.adj for layer in layers])
        self.clock.advance(
            0, self.cost.compute(flops=6.0 * edges, nbytes=nbytes, kernels=kernels),
            "compute",
        )

    def _charge_forward(self, layers, dims) -> None:
        """Forward pass roofline: SpMM + dense transform per layer."""
        flops = 0.0
        nbytes = 0.0
        for layer, f_in, f_out in zip(layers, dims[:-1], dims[1:]):
            flops += 2.0 * layer.adj.nnz * f_in
            flops += 2.0 * layer.n_dst * f_in * f_out
            nbytes += 8.0 * (layer.n_src * f_in + layer.n_dst * f_out)
        self.clock.advance(
            0,
            self.cost.compute(flops=flops, nbytes=nbytes, kernels=2 * len(layers)),
            "compute",
        )

    # ------------------------------------------------------------------ #
    # The forward computation
    # ------------------------------------------------------------------ #
    def _infer_chain(self, layers, h: np.ndarray, first_conv: int) -> np.ndarray:
        """Run ``layers`` through convs[first_conv:...] with activations."""
        model = self.model
        for offset, layer in enumerate(layers):
            i = first_conv + offset
            h = model.convs[i].infer(layer, h)
            if i < model.n_layers - 1:
                h = model.acts[i].apply(h)
        return h

    def _logits_for(self, targets: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Logits rows for (sorted, unique) ``targets``, with cost charging."""
        model, graph = self.model, self.graph
        n_layers = model.n_layers
        if self.cache is None:
            with self.clock.phase("sampling"):
                sample = self._sample_bulk([targets], self.fanout, rng)[0]
                self._charge_sampling(sample.layers)
            with self.clock.phase("propagation"):
                h = graph.features[sample.input_frontier]
                logits = self._infer_chain(sample.layers, h, 0)
                self._charge_forward(sample.layers, self._dims)
            return logits
        # Cached path: the final hop is sampled for the whole frontier, but
        # the deep (L-1)-layer expansion only runs for cache *misses*.
        with self.clock.phase("sampling"):
            outer = self._sample_bulk([targets], self.fanout[-1:], rng)[0]
            self._charge_sampling(outer.layers)
        layer_last = outer.layers[0]
        frontier = layer_last.src_ids
        with self.clock.phase("embedding_cache"):
            mask, hit_rows = self.cache.lookup(frontier)
            n_hits = int(mask.sum())
            if n_hits:
                self.clock.advance(
                    0,
                    self.cost.compute(
                        nbytes=2.0 * self.cache.row_bytes * n_hits, kernels=1
                    ),
                    "compute",
                )
        h_frontier = np.empty((frontier.size, self._dims[-2]))
        misses = frontier[~mask]
        if misses.size:
            with self.clock.phase("sampling"):
                inner = self._sample_bulk(
                    [misses], self.fanout[: n_layers - 1], rng
                )[0]
                self._charge_sampling(inner.layers)
            with self.clock.phase("propagation"):
                h = graph.features[inner.input_frontier]
                h_miss = self._infer_chain(inner.layers, h, 0)
                self._charge_forward(inner.layers, self._dims[:-1])
            h_frontier[~mask] = h_miss
            self.cache.insert(misses, h_miss)
        if n_hits:
            h_frontier[mask] = hit_rows
        with self.clock.phase("propagation"):
            logits = model.convs[-1].infer(layer_last, h_frontier)
            self._charge_forward([layer_last], self._dims[-2:])
        return logits

    # ------------------------------------------------------------------ #
    # Serving entry points
    # ------------------------------------------------------------------ #
    def serve(self, vertices: np.ndarray) -> np.ndarray:
        """One-shot serving (no queueing): logits aligned with ``vertices``."""
        vertices = np.asarray(vertices, dtype=np.int64)
        targets = np.unique(vertices)
        rng = np.random.default_rng(
            np.random.SeedSequence([self.config.seed, 401])
        )
        logits = self._logits_for(targets, rng)
        return logits[np.searchsorted(targets, vertices)]

    def _serve_batch(
        self,
        batch: list[InferenceRequest],
        dispatched: float,
        batch_index: int,
    ) -> list[InferenceResult]:
        """Serve one micro-batch; returns one result per member request."""
        targets = np.unique(np.concatenate([r.vertices for r in batch]))
        rng = np.random.default_rng(
            np.random.SeedSequence([self.config.seed, 401, batch_index])
        )
        before = self.clock.time(0)
        logits = self._logits_for(targets, rng)
        service = self.clock.time(0) - before
        completed = dispatched + service
        return [
            InferenceResult(
                request=req,
                logits=logits[np.searchsorted(targets, req.vertices)],
                dispatched=dispatched,
                completed=completed,
                batch_index=batch_index,
                batch_size=len(batch),
            )
            for req in batch
        ]

    def process(self, workload) -> ServeReport:
        """Run a workload to exhaustion under the micro-batching policy.

        ``workload`` provides ``initial() -> [requests]`` and
        ``on_complete(result) -> [requests]`` (see :mod:`repro.serve.workload`).
        A workload may additionally provide ``updates() -> [EdgeBatch]``
        (:class:`~repro.stream.UpdateStream`): an update whose arrival
        precedes the next micro-batch's dispatch time is applied first —
        the server is busy for the update's simulated duration, and the
        dispatch decision is re-taken afterwards (more arrivals may have
        joined the batch).  Deterministic: dispatch times depend only on
        simulated arrivals, the policy, and simulated service times.

        Each call reports only its own run: the phase clock and the cache's
        hit/miss counters reset on entry (cached rows and LFU frequencies
        persist across calls, like the feature cache across epochs).
        """
        self.clock.reset()
        if self.cache is not None:
            self.cache.stats.reset()
        updates = list(workload.updates()) if hasattr(workload, "updates") else []
        if updates and self.stream is None:
            raise ValueError(
                "workload interleaves edge updates but this engine serves "
                "a frozen graph; build it with Engine.serving() under "
                "RunConfig(stream_updates=True) (or pass a StreamingGraph)"
            )
        queue = RequestQueue()
        for req in workload.initial():
            queue.push(req)
        results: list[InferenceResult] = []
        free = 0.0
        batch_index = 0
        next_update = 0
        while True:
            dispatch = self.batcher.next_dispatch(queue, free)
            if dispatch is None:
                if next_update < len(updates):
                    # Requests drained first: apply the remaining churn.
                    at = max(free, updates[next_update].at)
                    free = at + self.apply_update(updates[next_update])
                    next_update += 1
                    continue
                break
            t, batch = dispatch
            if next_update < len(updates) and updates[next_update].at <= t:
                # The update is due before this batch would leave: put the
                # batch back (it stays the oldest pending work), apply the
                # update while the server would otherwise idle, and re-take
                # the dispatch decision at the new free time.
                queue.pending = batch + queue.pending
                at = max(free, updates[next_update].at)
                free = at + self.apply_update(updates[next_update])
                next_update += 1
                continue
            batch_results = self._serve_batch(batch, t, batch_index)
            free = batch_results[0].completed
            results.extend(batch_results)
            for result in batch_results:
                for req in workload.on_complete(result):
                    queue.push(req)
            batch_index += 1
        results.sort(key=lambda r: r.request.rid)
        return ServeReport(
            results=results,
            batches=batch_index,
            phase_seconds=self.clock.breakdown(),
            # Snapshot, so a later process() reset can't mutate this report.
            cache_stats=(
                dataclasses.replace(self.cache.stats)
                if self.cache is not None
                else None
            ),
            exact=self.exact,
            update_stats=(
                dataclasses.replace(self.stream.stats)
                if self.stream is not None and updates
                else None
            ),
        )
