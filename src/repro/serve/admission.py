"""Admission control: load shedding for the serving fleet.

An :class:`AdmissionController` protects replicas from overload by
refusing work it can tell will be wasted.  Two orthogonal checks:

* **queue depth** (``shed_policy="queue"``) — a request routed to a
  replica whose queue already holds ``shed_queue_depth`` requests is shed
  at *submit* time.  This bounds per-replica memory and caps the tail
  latency a backlog can inflict.
* **deadline** (``shed_policy="deadline"``) — a request that has already
  waited longer than ``shed_deadline`` simulated seconds when its batch
  dispatches is shed at *dispatch* time: serving it would burn replica
  time on an answer the client has given up on.

``shed_policy="none"`` admits everything (the default, and the setting
under which an N=1 fleet is bit-identical to the single-server engine).
Shed counts accumulate in each replica's
:class:`~repro.serve.cache.ServeStats` (``stats.shed``) and surface in the
fleet's :class:`~repro.serve.engine.ServeReport`.
"""

from __future__ import annotations

from ..obs.trace import get_tracer
from .request import InferenceRequest

__all__ = ["AdmissionController", "SHED_POLICIES"]

SHED_POLICIES = ("none", "queue", "deadline")


class AdmissionController:
    """Queue-depth / deadline load shedding with per-replica accounting."""

    def __init__(
        self,
        policy: str = "none",
        *,
        queue_depth: int = 64,
        deadline: float = 0.0,
    ) -> None:
        if policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {policy!r}; known: {SHED_POLICIES}"
            )
        if policy == "queue" and queue_depth <= 0:
            raise ValueError("queue shedding needs shed_queue_depth > 0")
        if policy == "deadline" and deadline <= 0:
            raise ValueError("deadline shedding needs shed_deadline > 0")
        self.policy = policy
        self.queue_depth = int(queue_depth)
        self.deadline = float(deadline)

    def admit(self, replica, request: InferenceRequest) -> bool:
        """Submit-time check: may ``request`` join ``replica``'s queue?

        Counts a shed against the replica that refused it.
        """
        if self.policy == "queue" and len(replica.queue) >= self.queue_depth:
            replica.stats.shed += 1
            return False
        return True

    def filter_batch(
        self, replica, batch: list[InferenceRequest], now: float
    ) -> list[InferenceRequest]:
        """Dispatch-time check: drop batch members past their deadline."""
        if self.policy != "deadline":
            return batch
        kept = [r for r in batch if now - r.arrival <= self.deadline]
        dropped = len(batch) - len(kept)
        replica.stats.shed += dropped
        if dropped:
            tracer = get_tracer()
            if tracer is not None:
                # Shed events land on the shedding replica's track (it runs
                # replica-side, so parallel workers record it identically).
                kept_set = {r.rid for r in kept}
                rid = getattr(replica, "rid", 0)
                for r in batch:
                    if r.rid not in kept_set:
                        tracer.instant(
                            "shed", t=now, cat="router",
                            track=f"replica{rid}",
                            args={"req": int(r.rid), "waited": now - r.arrival},
                        )
        return kept
