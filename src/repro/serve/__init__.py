"""repro.serve — online GNN inference serving with micro-batched sampling.

The serving subsystem reuses the training stack end to end: the sampling-
plan IR compiles each micro-batch of concurrent requests into one bulk
sampling program, the trained :class:`~repro.gnn.GNNModel` produces the
logits through its row-stable ``infer`` kernels, and the simulated clock /
roofline cost model make every latency number exactly reproducible.

Quickstart::

    from repro.api import Engine, RunConfig
    from repro.serve import ClosedLoopWorkload

    engine = Engine(RunConfig(dataset="products", scale=0.25, epochs=1))
    engine.train()
    server = engine.serving()           # exact full-neighborhood serving
    report = server.process(
        ClosedLoopWorkload(64, engine.graph.test_idx, clients=8)
    )
    print(report.latency_summary(), report.throughput)

Fleet serving (N replicas, routed, SLO-autoscaled) layers a
:class:`ServingCluster` over the same :class:`Replica` core::

    cfg = RunConfig(..., replicas=4, router="consistent_hash", slo_p99=2e-4)
    fleet = Engine(cfg).serving()        # a ServingCluster now
    report = fleet.process(ClosedLoopWorkload(4096, targets, clients=64))
"""

from .admission import AdmissionController, SHED_POLICIES
from .cache import EmbeddingCache, ServeStats
from .cluster import Autoscaler, ServingCluster
from .engine import ServeReport, ServingEngine
from .replica import Replica
from .request import InferenceRequest, InferenceResult, MicroBatcher, RequestQueue
from .router import (
    ConsistentHashRouter,
    DirectRouter,
    ROUTERS,
    RoundRobinRouter,
    Router,
    make_router,
)
from .workload import ClosedLoopWorkload, TraceWorkload, load_trace, save_trace

__all__ = [
    "InferenceRequest",
    "InferenceResult",
    "RequestQueue",
    "MicroBatcher",
    "EmbeddingCache",
    "ServeStats",
    "ServingEngine",
    "ServeReport",
    "Replica",
    "Router",
    "DirectRouter",
    "RoundRobinRouter",
    "ConsistentHashRouter",
    "ROUTERS",
    "make_router",
    "AdmissionController",
    "SHED_POLICIES",
    "ServingCluster",
    "Autoscaler",
    "TraceWorkload",
    "ClosedLoopWorkload",
    "load_trace",
    "save_trace",
]
