"""repro.serve — online GNN inference serving with micro-batched sampling.

The serving subsystem reuses the training stack end to end: the sampling-
plan IR compiles each micro-batch of concurrent requests into one bulk
sampling program, the trained :class:`~repro.gnn.GNNModel` produces the
logits through its row-stable ``infer`` kernels, and the simulated clock /
roofline cost model make every latency number exactly reproducible.

Quickstart::

    from repro.api import Engine, RunConfig
    from repro.serve import ClosedLoopWorkload

    engine = Engine(RunConfig(dataset="products", scale=0.25, epochs=1))
    engine.train()
    server = engine.serving()           # exact full-neighborhood serving
    report = server.process(
        ClosedLoopWorkload(64, engine.graph.test_idx, clients=8)
    )
    print(report.latency_summary(), report.throughput)
"""

from .cache import EmbeddingCache, ServeStats
from .engine import ServeReport, ServingEngine
from .request import InferenceRequest, InferenceResult, MicroBatcher, RequestQueue
from .workload import ClosedLoopWorkload, TraceWorkload, load_trace, save_trace

__all__ = [
    "InferenceRequest",
    "InferenceResult",
    "RequestQueue",
    "MicroBatcher",
    "EmbeddingCache",
    "ServeStats",
    "ServingEngine",
    "ServeReport",
    "TraceWorkload",
    "ClosedLoopWorkload",
    "load_trace",
    "save_trace",
]
