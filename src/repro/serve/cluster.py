"""The serving fleet: N replicas, a router, admission control, autoscaling.

:class:`ServingCluster` is the multi-replica control loop over the same
:class:`~repro.serve.replica.Replica` core the single-server
:class:`~repro.serve.engine.ServingEngine` drives.  The moving parts:

* a :class:`~repro.serve.router.Router` policy assigns each request to a
  replica at submit time;
* an :class:`~repro.serve.admission.AdmissionController` may shed requests
  (queue-depth at submit, deadline at dispatch) — sheds are counted per
  replica and surfaced in the report;
* every replica runs its own :class:`~repro.serve.request.MicroBatcher`
  over its own queue; the cluster repeatedly picks the earliest dispatch
  across live replicas, so the fleet timeline is a deterministic merge of
  per-replica timelines;
* streaming updates broadcast: the delta-log merge happens once on the
  shared :class:`~repro.stream.StreamingGraph`, then *every* replica
  absorbs it (fanout refresh, ProbCache clear, dirty-vertex
  EmbeddingCache invalidation) on its own clock;
* an optional :class:`Autoscaler` (enabled by ``slo_p99 > 0``) evaluates
  the p99 of each fixed interval on the simulated clock and steps the
  live replica count up when the SLO is violated, down (with hysteresis)
  when there is ample headroom — MLSYSIM-style first-principles modeling:
  all of it on simulated time, so scaling decisions replay identically.

**Exactness.** Replicas serve exact logits (``fanout=None``), so *which*
replica serves a request never changes its bits — routing, shedding and
scaling only move latency and throughput.  With ``replicas=1``, the
``direct`` router, and ``shed_policy="none"``, the cluster's dispatch
sequence degenerates to the single-server engine's and the run is
bit-identical to :class:`ServingEngine` (pinned by tests against the
pre-fleet golden digests).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..comm.clock import SimClock
from ..gnn.model import GNNModel
from ..graphs import Graph
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .admission import AdmissionController
from .cache import ServeStats
from .engine import ServeReport
from .replica import Replica
from .request import InferenceRequest, InferenceResult
from .router import make_router

__all__ = ["ServingCluster", "Autoscaler"]


class Autoscaler:
    """Steps the live replica count from p99-vs-SLO on the simulated clock.

    Every ``interval`` simulated seconds the cluster hands the autoscaler
    the p99 latency of requests completed in that window.  One step per
    evaluation: scale up by one replica when p99 exceeds the SLO, scale
    down by one when p99 is under half the SLO (the hysteresis band keeps
    the fleet from oscillating), always within ``[min_replicas,
    max_replicas]``.  Windows with no completed requests make no decision.
    """

    def __init__(
        self,
        slo_p99: float,
        *,
        min_replicas: int = 1,
        max_replicas: int = 8,
        interval: float = 0.01,
    ) -> None:
        if slo_p99 <= 0:
            raise ValueError("autoscaling needs a positive p99 SLO")
        if not (1 <= min_replicas <= max_replicas):
            raise ValueError(
                f"need 1 <= min_replicas <= max_replicas, got "
                f"[{min_replicas}, {max_replicas}]"
            )
        if interval <= 0:
            raise ValueError("autoscale interval must be positive")
        self.slo_p99 = float(slo_p99)
        self.min_replicas = int(min_replicas)
        self.max_replicas = int(max_replicas)
        self.interval = float(interval)

    def decide(self, p99: float | None, n_live: int) -> int:
        """Target replica count given the window's p99 (None = no data)."""
        if p99 is None:
            return n_live
        if p99 > self.slo_p99:
            return min(n_live + 1, self.max_replicas)
        if p99 < 0.5 * self.slo_p99:
            return max(n_live - 1, self.min_replicas)
        return n_live


class ServingCluster:
    """Drive N replicas through a routed, admission-controlled workload.

    ``config`` supplies the fleet knobs on top of the serving knobs:
    ``replicas`` (initial fleet size), ``router`` (policy name),
    ``shed_policy``/``shed_queue_depth``/``shed_deadline``, and the
    autoscaler bounds ``slo_p99``/``autoscale_min``/``autoscale_max``/
    ``autoscale_interval`` (``slo_p99=0`` disables autoscaling).
    """

    def __init__(
        self,
        model: GNNModel,
        graph: Graph,
        config,
        *,
        fanout: Sequence[int] | None = None,
        stream=None,
    ) -> None:
        if stream is not None:
            graph = stream.graph
        self.model = model
        self.graph = graph
        self.stream = stream
        self.config = config
        self._fanout = tuple(int(s) for s in fanout) if fanout is not None else None
        n_replicas = int(getattr(config, "replicas", 1))
        if n_replicas <= 0:
            raise ValueError(f"need at least one replica, got {n_replicas}")
        self.replicas: list[Replica] = [
            self._new_replica(rid) for rid in range(n_replicas)
        ]
        # Retired replicas keep contributing their clocks and shed counts
        # to the final report even after the autoscaler removes them.
        self.retired: list[Replica] = []
        self.router = make_router(getattr(config, "router", "direct"), graph.n)
        self.admission = AdmissionController(
            getattr(config, "shed_policy", "none"),
            queue_depth=getattr(config, "shed_queue_depth", 64),
            deadline=getattr(config, "shed_deadline", 0.0),
        )
        slo = float(getattr(config, "slo_p99", 0.0))
        self.autoscaler: Autoscaler | None = None
        if slo > 0:
            self.autoscaler = Autoscaler(
                slo,
                min_replicas=int(getattr(config, "autoscale_min", 1)),
                max_replicas=int(getattr(config, "autoscale_max", 8)),
                interval=float(getattr(config, "autoscale_interval", 0.01)),
            )

    def _new_replica(self, rid: int) -> Replica:
        return Replica(self.model, self.graph, self.config,
                       fanout=self._fanout, rid=rid)

    @property
    def exact(self) -> bool:
        return self.replicas[0].exact if self.replicas else self._fanout is None

    # ------------------------------------------------------------------ #
    # Request flow
    # ------------------------------------------------------------------ #
    def _by_rid(self) -> dict[int, Replica]:
        return {rep.rid: rep for rep in self.replicas}

    def _submit(self, request: InferenceRequest) -> None:
        rid = self.router.route(request)
        rep = self._by_rid()[rid]
        admitted = self.admission.admit(rep, request)
        tracer = get_tracer()
        if tracer is not None:
            # The flight recorder's first hop: the routing decision, keyed
            # by the request's rid (the same trace id the replica's async
            # window carries).  Recorded identically by the parallel path's
            # parent-side routing loop (repro.parallel.fleet).
            tracer.instant(
                "route", t=request.arrival, cat="router", track="router",
                args={
                    "req": int(request.rid),
                    "replica": int(rid),
                    "admitted": bool(admitted),
                },
            )
        if admitted:
            rep.queue.push(request)

    def _broadcast_update(self, batch) -> None:
        """Apply one EdgeBatch to the shared graph, absorb on every replica.

        The structural merge happens once; each replica then pays its own
        absorb cost (and invalidates its own cached rows) and is busy for
        that duration starting no earlier than the update's arrival.
        """
        result = self.stream.apply(batch)
        for rep in self.replicas:
            at = max(rep.free, batch.at)
            rep.free = at + rep.absorb_update(result, at=at)

    def _autoscale_step(self, window: list[InferenceResult], now: float) -> None:
        """One autoscaler evaluation: maybe add or retire a replica."""
        scaler = self.autoscaler
        p99 = (
            float(np.percentile([r.latency for r in window], 99))
            if window
            else None
        )
        target = scaler.decide(p99, len(self.replicas))
        tracer = get_tracer()
        if tracer is not None and target != len(self.replicas):
            tracer.instant(
                "autoscale", t=now, cat="router", track="router",
                args={"from": len(self.replicas), "to": target},
            )
        if target == len(self.replicas):
            return
        if target > len(self.replicas):
            rid = max(
                [rep.rid for rep in self.replicas + self.retired], default=-1
            ) + 1
            rep = self._new_replica(rid)
            rep.free = now  # joins cold, available from the decision point
            self.replicas.append(rep)
        else:
            # Retire the newest replica; its queued work is re-routed
            # (and re-admitted) across the survivors.
            rep = max(self.replicas, key=lambda r: r.rid)
            self.replicas.remove(rep)
            self.retired.append(rep)
            orphans = sorted(
                rep.queue.pending
                + [r for _, _, r in rep.queue._arrivals],
                key=lambda r: (r.arrival, r.rid),
            )
            self.router.rebalance([r.rid for r in self.replicas])
            for req in orphans:
                self._submit(req)
            return
        self.router.rebalance([r.rid for r in self.replicas])

    def serve(self, vertices: np.ndarray) -> np.ndarray:
        """One-shot serving (no queueing): logits aligned with ``vertices``.

        Served by the lowest-id live replica with the same RNG stream the
        single-server engine uses — in exact mode the answer is the same
        from any replica.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        targets = np.unique(vertices)
        rng = np.random.default_rng(
            np.random.SeedSequence([self.config.seed, 401])
        )
        rep = min(self.replicas, key=lambda r: r.rid)
        logits = rep.logits_for(targets, rng)
        return logits[np.searchsorted(targets, vertices)]

    # ------------------------------------------------------------------ #
    # The fleet event loop
    # ------------------------------------------------------------------ #
    def process(self, workload) -> ServeReport:
        """Run a workload to exhaustion across the fleet.

        The loop repeatedly asks every live replica's batcher for its next
        dispatch, picks the earliest ``(time, rid)``, and pushes the other
        candidates back (each taken batch is its queue's oldest pending
        work, so push-back preserves order).  Streaming updates due before
        the chosen dispatch broadcast first; autoscaler evaluations due
        before it run first.  Deterministic end to end: every decision is
        a function of simulated times and ids.

        With ``config.workers > 0`` the same run executes on real cores:
        each replica's timeline runs in its own worker process over
        shared-memory graph views (:mod:`repro.parallel.fleet`), with the
        merge order — and therefore every digest — unchanged.
        """
        workers = int(getattr(self.config, "workers", 0))
        if workers > 0:
            from ..parallel.fleet import process_parallel

            return process_parallel(self, workload, workers)
        for rep in self.replicas:
            rep.reset()
        if self.autoscaler is not None and (
            len(self.replicas) < self.autoscaler.min_replicas
        ):
            raise ValueError(
                "initial replica count is below the autoscaler minimum"
            )
        self.router.rebalance([rep.rid for rep in self.replicas])
        updates = list(workload.updates()) if hasattr(workload, "updates") else []
        if updates and self.stream is None:
            raise ValueError(
                "workload interleaves edge updates but this cluster serves "
                "a frozen graph; build it over a StreamingGraph "
                "(RunConfig(stream_updates=True))"
            )
        for req in workload.initial():
            self._submit(req)
        results: list[InferenceResult] = []
        window: list[InferenceResult] = []
        scaler = self.autoscaler
        next_eval = scaler.interval if scaler is not None else None
        trace: list[tuple[float, int]] = [(0.0, len(self.replicas))]
        batch_index = 0
        next_update = 0
        while True:
            # One dispatch candidate per live replica; earliest (t, rid)
            # wins, everyone else's batch goes back to the queue front.
            candidates: list[tuple[float, Replica, list[InferenceRequest]]] = []
            for rep in self.replicas:
                dispatch = rep.batcher.next_dispatch(rep.queue, rep.free)
                if dispatch is not None:
                    candidates.append((dispatch[0], rep, dispatch[1]))
            if not candidates:
                if next_update < len(updates):
                    # Requests drained first: apply the remaining churn.
                    self._broadcast_update(updates[next_update])
                    next_update += 1
                    continue
                break
            t, rep, batch = min(candidates, key=lambda c: (c[0], c[1].rid))

            def push_back() -> None:
                for _, other, other_batch in candidates:
                    other.queue.pending = other_batch + other.queue.pending

            if next_update < len(updates) and updates[next_update].at <= t:
                push_back()
                self._broadcast_update(updates[next_update])
                next_update += 1
                continue
            if next_eval is not None and t >= next_eval:
                push_back()
                self._autoscale_step(window, next_eval)
                trace.append((next_eval, len(self.replicas)))
                window = []
                next_eval += scaler.interval
                continue
            for _, other, other_batch in candidates:
                if other is not rep:
                    other.queue.pending = other_batch + other.queue.pending
            batch = self.admission.filter_batch(rep, batch, t)
            if not batch:
                continue
            batch_results = rep.serve_batch(batch, t, batch_index)
            rep.free = batch_results[0].completed
            rep.batches += 1
            rep.served += len(batch_results)
            results.extend(batch_results)
            if next_eval is not None:
                window.extend(batch_results)
            for result in batch_results:
                for req in workload.on_complete(result):
                    self._submit(req)
            batch_index += 1
        results.sort(key=lambda r: r.request.rid)
        return self._report(results, batch_index, updates, trace)

    def _report(self, results, batches, updates, trace) -> ServeReport:
        everyone = self.replicas + self.retired
        cache_stats: ServeStats | None = None
        if any(rep.cache is not None for rep in everyone):
            # Fleet-wide counters: one ServeStats summing every replica's.
            cache_stats = ServeStats()
            for rep in everyone:
                for f in dataclasses.fields(ServeStats):
                    setattr(
                        cache_stats, f.name,
                        getattr(cache_stats, f.name) + getattr(rep.stats, f.name),
                    )
        report = ServeReport(
            results=results,
            batches=batches,
            phase_seconds=SimClock.merged(
                [rep.clock for rep in everyone]
            ).breakdown(),
            cache_stats=cache_stats,
            exact=self.exact,
            update_stats=(
                dataclasses.replace(self.stream.stats)
                if self.stream is not None and updates
                else None
            ),
            shed=sum(rep.stats.shed for rep in everyone),
            replica_trace=trace,
            per_replica={rep.rid: rep.served for rep in everyone},
        )
        registry = get_registry()
        if registry is not None:
            report.publish(registry)
            registry.gauge(
                "serve_replicas", "live replicas at end of run",
                router=getattr(self.router, "name", type(self.router).__name__),
            ).set(len(self.replicas))
            for rep in everyone:
                rep.stats.publish(registry, replica=rep.rid)
                registry.counter(
                    "serve_replica_requests_total",
                    "requests served per replica", replica=rep.rid,
                ).set(rep.served)
                if rep.prob_cache is not None:
                    rep.prob_cache.publish(registry, replica=rep.rid)
        return report
