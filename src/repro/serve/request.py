"""Requests, the admission queue, and the micro-batching policy.

Online serving receives :class:`InferenceRequest`\\ s (each naming the
target vertices one caller wants logits for) at simulated arrival times.
The :class:`RequestQueue` separates *future* arrivals from *pending*
(arrived, not yet dispatched) requests; the :class:`MicroBatcher` decides
when a micro-batch leaves the queue under the classic max-batch-size /
max-wait policy:

* dispatch as soon as ``max_batch_size`` requests are pending (and the
  server is free), or
* dispatch whatever is pending once the oldest request has waited
  ``max_wait`` simulated seconds.

Both the queue and the batcher are pure state machines over simulated
time — no wall clocks anywhere — so admission order, batch composition and
every dispatch time are exactly reproducible.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

__all__ = ["InferenceRequest", "InferenceResult", "RequestQueue", "MicroBatcher"]


@dataclass(frozen=True)
class InferenceRequest:
    """One caller's ask: logits for ``vertices``, arriving at ``arrival``.

    ``rid`` is the caller-assigned request id (unique per run); ties in
    arrival time are broken by admission order, so a trace replays
    identically every time.
    """

    rid: int
    vertices: np.ndarray
    arrival: float = 0.0

    def __post_init__(self) -> None:
        v = np.asarray(self.vertices, dtype=np.int64)
        if v.ndim != 1 or v.size == 0:
            raise ValueError("a request needs a non-empty 1-D vertex array")
        object.__setattr__(self, "vertices", v)
        if self.arrival < 0:
            raise ValueError(f"arrival time must be non-negative, got {self.arrival}")


@dataclass(frozen=True)
class InferenceResult:
    """A served request: logits row-aligned with the request's vertices."""

    request: InferenceRequest
    logits: np.ndarray
    dispatched: float  # when the micro-batch left the queue
    completed: float  # when the micro-batch finished serving
    batch_index: int  # which micro-batch served it
    batch_size: int  # how many requests shared that micro-batch

    @property
    def latency(self) -> float:
        """End-to-end simulated latency: completion minus arrival."""
        return self.completed - self.request.arrival

    @property
    def queue_wait(self) -> float:
        """Time spent waiting for the micro-batch to form / server to free."""
        return self.dispatched - self.request.arrival


class RequestQueue:
    """Future arrivals (a heap) plus the pending, admitted FIFO.

    ``push`` accepts requests in any order; ``admit_until(t)`` moves every
    request with ``arrival <= t`` into the pending list in deterministic
    ``(arrival, push order)`` order.
    """

    def __init__(self) -> None:
        self._arrivals: list[tuple[float, int, InferenceRequest]] = []
        self._seq = 0
        self.pending: list[InferenceRequest] = []

    def push(self, request: InferenceRequest) -> None:
        heapq.heappush(self._arrivals, (request.arrival, self._seq, request))
        self._seq += 1

    def __len__(self) -> int:
        return len(self._arrivals) + len(self.pending)

    @property
    def next_arrival(self) -> float:
        """Arrival time of the earliest future request (inf when none)."""
        return self._arrivals[0][0] if self._arrivals else math.inf

    def admit_until(self, t: float) -> None:
        """Move every request that has arrived by time ``t`` to pending."""
        while self._arrivals and self._arrivals[0][0] <= t:
            self.pending.append(heapq.heappop(self._arrivals)[2])

    def take(self, n: int) -> list[InferenceRequest]:
        """Remove and return the ``n`` oldest pending requests."""
        batch, self.pending = self.pending[:n], self.pending[n:]
        return batch


@dataclass(frozen=True)
class MicroBatcher:
    """Max-batch-size / max-wait dispatch policy over a :class:`RequestQueue`."""

    max_batch_size: int = 8
    max_wait: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.max_wait < 0:
            raise ValueError("max_wait must be non-negative")

    def next_dispatch(
        self, queue: RequestQueue, free_at: float
    ) -> tuple[float, list[InferenceRequest]] | None:
        """The next micro-batch and its dispatch time, or ``None`` when idle.

        ``free_at`` is when the server finishes its current work; a batch
        never leaves before it.  Future arrivals that land before the
        dispatch moment join the queue first (and may fill the batch
        early), which is what makes the policy deterministic: the decision
        depends only on simulated times, never on evaluation order.
        """
        if len(queue) == 0:
            return None
        if not queue.pending:
            queue.admit_until(queue.next_arrival)
        while True:
            oldest = queue.pending[0].arrival
            if len(queue.pending) >= self.max_batch_size:
                # Full batch: leaves once the server is free and its last
                # member has arrived (pending is arrival-sorted).
                t = max(free_at, queue.pending[self.max_batch_size - 1].arrival)
                queue.admit_until(t)  # late arrivals queue for the next batch
                return t, queue.take(self.max_batch_size)
            deadline = max(free_at, oldest + self.max_wait)
            if queue.next_arrival <= deadline:
                # Another request lands before the deadline — admit it and
                # re-evaluate (it may complete a full batch).
                queue.admit_until(queue.next_arrival)
                continue
            return deadline, queue.take(len(queue.pending))
