"""Request routing policies for the serving fleet.

A :class:`Router` decides which replica serves each incoming request.  The
contract is deliberately small — ``rebalance(live)`` whenever the set of
live replica ids changes (startup, autoscaler steps) and
``route(request) -> rid`` per request — and deliberately deterministic:
policies may keep internal state (the round-robin cursor, the hash ring)
but never consult wall time or unseeded randomness, so a fleet run is
exactly reproducible.

Three built-in policies:

* ``direct`` — everything to the lowest-id live replica.  The degenerate
  policy that makes an N=1 fleet bit-identical to the single-server
  :class:`~repro.serve.engine.ServingEngine`.
* ``round_robin`` — cycle through live replicas in id order.  Best load
  spread, worst cache locality: a hot vertex's penultimate-layer row ends
  up cached on *every* replica.
* ``consistent_hash`` — locality-aware.  The vertex space is cut into
  ``n_partitions`` contiguous ranges (the same
  :func:`~repro.partition.block1d.split_rows` arithmetic the 1.5D grid
  uses) and each partition is mapped onto a blake2b hash ring of replica
  virtual nodes.  Requests for the same vertex range always land on the
  same replica, so its :class:`~repro.serve.cache.EmbeddingCache` hit rate
  compounds instead of being diluted N ways — and when the autoscaler adds
  or removes a replica, only the partitions adjacent to its virtual nodes
  move (the classic consistent-hashing stability argument).

Hashes use :func:`hashlib.blake2b`, not Python's builtin ``hash`` — the
builtin is salted per process, which would make ring placement
irreproducible across runs.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Protocol, Sequence

import numpy as np

from ..partition.block1d import split_rows
from .request import InferenceRequest

__all__ = [
    "Router",
    "DirectRouter",
    "RoundRobinRouter",
    "ConsistentHashRouter",
    "ROUTERS",
    "make_router",
]


class Router(Protocol):
    """Picks a replica id for each request."""

    #: Registry name of the policy (what traces and banners print).
    name: str

    def rebalance(self, live: Sequence[int]) -> None:
        """Install the new set of live replica ids (sorted, non-empty)."""
        ...

    def route(self, request: InferenceRequest) -> int:
        """Return the live replica id that should serve ``request``."""
        ...


class DirectRouter:
    """Everything to the lowest-id live replica (the N=1 identity policy)."""

    name = "direct"

    def __init__(self, n_vertices: int | None = None) -> None:
        self._live: list[int] = []

    def rebalance(self, live: Sequence[int]) -> None:
        self._live = sorted(live)

    def route(self, request: InferenceRequest) -> int:
        return self._live[0]


class RoundRobinRouter:
    """Cycle through live replicas in id order.

    The cursor survives rebalances (it is a monotone counter, reduced
    modulo the live count at route time), so adding a replica mid-run
    does not restart the cycle.
    """

    name = "round_robin"

    def __init__(self, n_vertices: int | None = None) -> None:
        self._live: list[int] = []
        self._next = 0

    def rebalance(self, live: Sequence[int]) -> None:
        self._live = sorted(live)

    def route(self, request: InferenceRequest) -> int:
        rid = self._live[self._next % len(self._live)]
        self._next += 1
        return rid


def _stable_hash(token: str) -> int:
    """64-bit blake2b of ``token`` — stable across processes and runs."""
    return int.from_bytes(
        hashlib.blake2b(token.encode(), digest_size=8).digest(), "big"
    )


class ConsistentHashRouter:
    """Locality-aware routing: vertex partition → hash ring → replica.

    ``n_vertices`` fixes the partitioned vertex space; ``n_partitions``
    contiguous ranges (``split_rows`` boundaries) are each owned by the
    first replica virtual node clockwise on the ring.  A request is routed
    by the partition of its *first* target vertex — requests in this repo
    are ego-network lookups whose vertices are spatially close, and using
    a single representative keeps routing O(log ring) per request.
    """

    name = "consistent_hash"

    def __init__(
        self,
        n_vertices: int,
        *,
        n_partitions: int = 64,
        vnodes: int = 16,
    ) -> None:
        if n_vertices <= 0:
            raise ValueError("consistent_hash router needs the vertex count")
        self.n_vertices = int(n_vertices)
        self.n_partitions = min(int(n_partitions), self.n_vertices)
        self.vnodes = int(vnodes)
        # Partition boundaries never move; only ring ownership does.
        self._bounds = split_rows(self.n_vertices, self.n_partitions)
        self._live: list[int] = []
        self._owner = np.zeros(self.n_partitions, dtype=np.int64)

    def rebalance(self, live: Sequence[int]) -> None:
        self._live = sorted(live)
        ring: list[tuple[int, int]] = []
        for rid in self._live:
            for v in range(self.vnodes):
                ring.append((_stable_hash(f"replica:{rid}:{v}"), rid))
        ring.sort()
        points = np.array([p for p, _ in ring], dtype=np.uint64)
        owners = np.array([r for _, r in ring], dtype=np.int64)
        for part in range(self.n_partitions):
            h = _stable_hash(f"part:{part}")
            idx = int(np.searchsorted(points, h))
            self._owner[part] = owners[idx % len(owners)]

    def partition_of(self, vertex: int) -> int:
        """The contiguous vertex range ``vertex`` falls into."""
        return int(np.searchsorted(self._bounds, vertex, side="right") - 1)

    def route(self, request: InferenceRequest) -> int:
        return int(self._owner[self.partition_of(int(request.vertices[0]))])


ROUTERS: dict[str, Callable[..., Router]] = {
    "direct": DirectRouter,
    "round_robin": RoundRobinRouter,
    "consistent_hash": ConsistentHashRouter,
}


def make_router(name: str, n_vertices: int) -> Router:
    """Build a router policy by registry name."""
    try:
        factory = ROUTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown router {name!r}; known: {sorted(ROUTERS)}"
        ) from None
    return factory(n_vertices)
