"""Replica: one serving unit's compute core, caches, and clock.

A :class:`Replica` is everything *one* server owns in a serving fleet: the
sampler (plan-compiled when the kernel supports it), the
:class:`~repro.core.compile.ProbCache`, the
:class:`~repro.serve.cache.EmbeddingCache`, a private
:class:`~repro.comm.clock.SimClock` / :class:`~repro.comm.cost_model.CostModel`
pair for phase accounting, and the :class:`~repro.serve.request.MicroBatcher`
plus :class:`~repro.serve.request.RequestQueue` the dispatch policy runs on.
What it deliberately does **not** own is the control loop: a single-server
:class:`~repro.serve.engine.ServingEngine` or a multi-replica
:class:`~repro.serve.cluster.ServingCluster` drives one or many replicas
through the same three verbs —

* :meth:`serve_batch` — compute logits for one dispatched micro-batch,
  charging the replica's own clock;
* :meth:`logits_for` — the underlying cached/exact/sampled forward path;
* :meth:`absorb_update` — react to an applied graph update: refresh the
  exact-mode fanout, drop stale probability matrices, and invalidate the
  dirty vertices' cached embeddings (each replica invalidates *its own*
  cache contents, which is what makes fleet-wide update broadcast cheap).

Exactness is a per-replica property: in exact mode (``fanout=None``) the
logits a replica serves are bit-identical to layer-wise inference and do
not depend on which replica served the request, so any router policy in
front of a fleet of replicas preserves the repo's signature contract.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..comm.clock import SimClock
from ..comm.cost_model import CostModel, payload_nbytes
from ..core.compile import ProbCache, optimize
from ..core.sage_sampler import SageSampler
from ..sparse.kernels import get_kernel
from ..gnn.model import GNNModel
from ..graphs import Graph
from ..obs.trace import get_tracer, maybe_span
from .cache import EmbeddingCache, ServeStats
from .request import InferenceRequest, InferenceResult, MicroBatcher, RequestQueue

__all__ = ["Replica"]


def _conv_in_dim(conv) -> int:
    for key in ("W", "W_neigh"):
        if key in conv.params:
            return conv.params[key].shape[0]
    raise TypeError(f"cannot infer input width of {type(conv).__name__}")


def _conv_out_dim(conv) -> int:
    for key in ("W", "W_neigh"):
        if key in conv.params:
            return conv.params[key].shape[1]
    raise TypeError(f"cannot infer output width of {type(conv).__name__}")


class Replica:
    """One serving unit: sampler + caches + clock, no control loop.

    ``config`` supplies the serving knobs (``serve_batch_size``,
    ``serve_max_wait``, ``embed_budget``), the kernel backend, the machine
    model and the seed.  ``fanout=None`` selects the exact full-neighborhood
    mode; a tuple of per-layer counts selects sampled serving through the
    configured sampler (its length must match the model depth).  ``rid``
    names the replica inside a fleet (0 for a single server).
    """

    def __init__(
        self,
        model: GNNModel,
        graph: Graph,
        config,
        *,
        fanout: Sequence[int] | None = None,
        rid: int = 0,
    ) -> None:
        if graph.features is None:
            raise ValueError("serving needs node features")
        self.rid = rid
        self.model = model
        self.graph = graph
        self.config = config
        self.clock = SimClock(1)
        self.cost = CostModel(config.machine)
        self.exact = fanout is None
        n_layers = model.n_layers
        self._dims = [_conv_in_dim(c) for c in model.convs] + [
            _conv_out_dim(model.convs[-1])
        ]
        if self.exact:
            self.fanout = self._full_fanout()
            # Exactness needs the node-wise full-expansion plan: every dst
            # keeps its whole neighborhood and joins its own frontier.
            self.sampler = SageSampler(include_dst=True, kernel=config.kernel)
        else:
            fanout = tuple(int(s) for s in fanout)
            if len(fanout) != n_layers:
                raise ValueError(
                    f"serving fanout {fanout} has {len(fanout)} entries for "
                    f"a {n_layers}-layer model"
                )
            self.fanout = fanout
            from ..api.registries import make_sampler

            self.sampler = make_sampler(
                config.sampler, graph=graph, for_training=True,
                kernel=config.kernel,
            )
        # A compiled kernel backend (compiles_plans) runs fused plans and
        # can reuse probability matrices across micro-batches that share a
        # frontier — the serving-side payoff of the plan compiler.
        self._compiled = getattr(
            get_kernel(config.kernel), "compiles_plans", False
        )
        self.prob_cache: ProbCache | None = (
            ProbCache() if self._compiled else None
        )
        self.cache: EmbeddingCache | None = None
        if self.exact and n_layers > 1 and config.embed_budget > 0:
            self.cache = EmbeddingCache(
                graph.n, self._dims[-2], budget_bytes=config.embed_budget
            )
        # Shed/hit counters: share the cache's ServeStats when there is a
        # cache (one counter object per replica), otherwise a private one.
        self.stats: ServeStats = (
            self.cache.stats if self.cache is not None else ServeStats()
        )
        self.batcher = MicroBatcher(config.serve_batch_size, config.serve_max_wait)
        # Fleet scheduling state, owned here so a cluster stays stateless
        # about the per-replica timeline.
        self.queue = RequestQueue()
        self.free = 0.0
        self.batches = 0
        self.served = 0

    def _full_fanout(self) -> tuple[int, ...]:
        """The per-layer count that keeps every neighborhood whole.

        Recomputed after each graph update: an insertion can raise the max
        in-degree, and exactness requires the SAMPLE cap to stay above it.
        """
        full = max(1, int(self.graph.adj.nnz_per_row().max()))
        return (full,) * self.model.n_layers

    def reset(self) -> None:
        """Per-run reset: clock, counters and scheduling state — cached
        rows and LFU frequencies persist (like the feature cache across
        epochs)."""
        self.clock.reset()
        self.stats.reset()
        self.queue = RequestQueue()
        self.free = 0.0
        self.batches = 0
        self.served = 0

    # ------------------------------------------------------------------ #
    # Graph updates
    # ------------------------------------------------------------------ #
    def absorb_update(self, result, at: float | None = None) -> float:
        """React to an applied :class:`~repro.stream.delta.UpdateResult`.

        The streaming graph itself is shared (the delta-log merge happened
        once, upstream); each replica then pays for absorbing the change
        into its own materialized view and invalidates every cached
        embedding row the change can reach (``dirty_closure`` at depth
        ``L - 2`` on the post-update adjacency).  All of it is charged to
        *this replica's* clock under the ``graph_update`` phase; returns
        the simulated seconds spent.  ``at`` is the workload time the
        absorb starts at, used only to place the trace span.
        """
        from ..stream.graph import dirty_closure

        before = self.clock.time(0)
        with maybe_span(
            "graph_update",
            cat="update",
            track=f"replica{self.rid}",
            clock=self.clock,
            offset=(at if at is not None else 0.0) - before,
            args={
                "replica": self.rid,
                "dirty": int(result.dirty_rows.size),
                "compacted": bool(result.compacted),
            },
        ), self.clock.phase("graph_update"):
            cost = result.sim_cost
            # Log absorb + dirty-row re-merge: hash/searchsorted per edge,
            # then a splice that rewrites the merged rows (16B/entry, r+w).
            self.clock.advance(
                0,
                self.cost.compute(
                    flops=64.0 * cost.get("batch_edges", 0.0),
                    nbytes=24.0 * cost.get("batch_edges", 0.0)
                    + 32.0 * cost.get("merged_nnz", 0.0),
                    kernels=2,
                ),
                "compute",
            )
            if result.compacted:
                # Compaction re-canonicalizes the full matrix: a global
                # sort (n log n flops) plus one read+write of every entry.
                nnz = cost.get("compacted_nnz", 0.0)
                self.clock.advance(
                    0,
                    self.cost.compute(
                        flops=8.0 * nnz * max(1.0, np.log2(max(nnz, 2.0))),
                        nbytes=32.0 * nnz,
                        kernels=4,
                    ),
                    "compute",
                )
            if self.exact:
                self.fanout = self._full_fanout()
            if self.prob_cache is not None:
                # Cached probability matrices were computed on the old
                # adjacency; every one of them is stale now.
                self.prob_cache.clear()
            if self.cache is not None and result.dirty_rows.size:
                stale = dirty_closure(
                    self.graph.adj, result.dirty_rows, self.model.n_layers - 2
                )
                dropped = self.cache.invalidate(stale)
                if dropped:
                    self.clock.advance(
                        0,
                        self.cost.compute(
                            nbytes=self.cache.row_bytes * dropped, kernels=1
                        ),
                        "compute",
                    )
        return self.clock.time(0) - before

    # ------------------------------------------------------------------ #
    # Cost accounting helpers
    # ------------------------------------------------------------------ #
    def _sample_bulk(self, batches, fanout, rng):
        """The replica's one bulk-sampling call site.

        Threads the probability cache through when the configured kernel
        compiles plans; interpreted backends get the plain call (their
        ``sample_bulk`` may be an override without the keyword).
        """
        if self.prob_cache is not None:
            return self.sampler.sample_bulk(
                self.graph.adj, batches, fanout, rng,
                prob_cache=self.prob_cache,
            )
        return self.sampler.sample_bulk(self.graph.adj, batches, fanout, rng)

    def _charge_sampling(self, layers) -> None:
        """One plan execution: fixed kernel launches + size-scaled work.

        The kernel count comes from the emitted plan (4 steps per layer for
        the node-wise program, 2 after the plan compiler fuses PROB+NORM
        and SAMPLE+EXTRACT), *not* from the number of coalesced requests —
        that independence is the micro-batching amortization.
        """
        program = self.sampler.plan(tuple(self.fanout[: len(layers)]))
        if program is not None and self._compiled:
            program = optimize(program)
        kernels = len(program.steps) if program is not None else 4 * len(layers)
        edges = sum(layer.adj.nnz for layer in layers)
        nbytes = 2.0 * payload_nbytes([layer.adj for layer in layers])
        self.clock.advance(
            0, self.cost.compute(flops=6.0 * edges, nbytes=nbytes, kernels=kernels),
            "compute",
        )

    def _charge_forward(self, layers, dims) -> None:
        """Forward pass roofline: SpMM + dense transform per layer."""
        flops = 0.0
        nbytes = 0.0
        for layer, f_in, f_out in zip(layers, dims[:-1], dims[1:]):
            flops += 2.0 * layer.adj.nnz * f_in
            flops += 2.0 * layer.n_dst * f_in * f_out
            nbytes += 8.0 * (layer.n_src * f_in + layer.n_dst * f_out)
        self.clock.advance(
            0,
            self.cost.compute(flops=flops, nbytes=nbytes, kernels=2 * len(layers)),
            "compute",
        )

    # ------------------------------------------------------------------ #
    # The forward computation
    # ------------------------------------------------------------------ #
    def _infer_chain(self, layers, h: np.ndarray, first_conv: int) -> np.ndarray:
        """Run ``layers`` through convs[first_conv:...] with activations."""
        model = self.model
        for offset, layer in enumerate(layers):
            i = first_conv + offset
            h = model.convs[i].infer(layer, h)
            if i < model.n_layers - 1:
                h = model.acts[i].apply(h)
        return h

    def logits_for(self, targets: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Logits rows for (sorted, unique) ``targets``, with cost charging."""
        model, graph = self.model, self.graph
        n_layers = model.n_layers
        if self.cache is None:
            with maybe_span("sampling", cat="serve"), self.clock.phase("sampling"):
                sample = self._sample_bulk([targets], self.fanout, rng)[0]
                self._charge_sampling(sample.layers)
            with maybe_span("propagation", cat="serve"), self.clock.phase(
                "propagation"
            ):
                h = graph.features[sample.input_frontier]
                logits = self._infer_chain(sample.layers, h, 0)
                self._charge_forward(sample.layers, self._dims)
            return logits
        # Cached path: the final hop is sampled for the whole frontier, but
        # the deep (L-1)-layer expansion only runs for cache *misses*.
        with maybe_span("sampling", cat="serve"), self.clock.phase("sampling"):
            outer = self._sample_bulk([targets], self.fanout[-1:], rng)[0]
            self._charge_sampling(outer.layers)
        layer_last = outer.layers[0]
        frontier = layer_last.src_ids
        with maybe_span("embedding_cache", cat="serve") as cache_sp, \
                self.clock.phase("embedding_cache"):
            mask, hit_rows = self.cache.lookup(frontier)
            n_hits = int(mask.sum())
            if cache_sp is not None:
                cache_sp.args["hits"] = n_hits
                cache_sp.args["misses"] = int(frontier.size) - n_hits
            if n_hits:
                self.clock.advance(
                    0,
                    self.cost.compute(
                        nbytes=2.0 * self.cache.row_bytes * n_hits, kernels=1
                    ),
                    "compute",
                )
        h_frontier = np.empty((frontier.size, self._dims[-2]))
        misses = frontier[~mask]
        if misses.size:
            with maybe_span("sampling", cat="serve"), self.clock.phase("sampling"):
                inner = self._sample_bulk(
                    [misses], self.fanout[: n_layers - 1], rng
                )[0]
                self._charge_sampling(inner.layers)
            with maybe_span("propagation", cat="serve"), self.clock.phase(
                "propagation"
            ):
                h = graph.features[inner.input_frontier]
                h_miss = self._infer_chain(inner.layers, h, 0)
                self._charge_forward(inner.layers, self._dims[:-1])
            h_frontier[~mask] = h_miss
            self.cache.insert(misses, h_miss)
        if n_hits:
            h_frontier[mask] = hit_rows
        with maybe_span("propagation", cat="serve"), self.clock.phase(
            "propagation"
        ):
            logits = model.convs[-1].infer(layer_last, h_frontier)
            self._charge_forward([layer_last], self._dims[-2:])
        return logits

    def serve_batch(
        self,
        batch: list[InferenceRequest],
        dispatched: float,
        batch_index: int,
    ) -> list[InferenceResult]:
        """Serve one micro-batch; returns one result per member request.

        The per-batch RNG stream is keyed by ``(seed, batch_index)`` only —
        not the replica id — which keeps a one-replica fleet bit-identical
        to the pre-fleet engine.  In exact mode the logits do not consume
        randomness at all, so replicas sharing a stream cannot correlate.
        """
        targets = np.unique(np.concatenate([r.vertices for r in batch]))
        rng = np.random.default_rng(
            np.random.SeedSequence([self.config.seed, 401, batch_index])
        )
        before = self.clock.time(0)
        tracer = get_tracer()
        if tracer is None:
            logits = self.logits_for(targets, rng)
        else:
            # The batch span (and every phase span nested in logits_for)
            # lives on this replica's track, with the replica-local clock
            # mapped onto the workload timeline at the dispatch instant.
            # Args hold request rids only — nothing worker- or
            # batch-index-local — so a parallel run's spans are identical
            # to a serial run's.
            track = f"replica{self.rid}"
            with tracer.span(
                "serve_batch",
                cat="serve",
                track=track,
                clock=self.clock,
                offset=dispatched - before,
                args={
                    "requests": [int(r.rid) for r in batch],
                    "batch_size": len(batch),
                    "targets": int(targets.size),
                },
            ):
                logits = self.logits_for(targets, rng)
        service = self.clock.time(0) - before
        completed = dispatched + service
        if tracer is not None:
            # Flight recorder: one async window per request, keyed by the
            # rid (the trace id the router instants carry too), spanning
            # arrival -> reply on this replica's track.
            for req in batch:
                tracer.async_span(
                    "request",
                    aid=req.rid,
                    start=req.arrival,
                    end=completed,
                    track=f"replica{self.rid}",
                    args={"req": int(req.rid), "replica": self.rid},
                )
        return [
            InferenceResult(
                request=req,
                logits=logits[np.searchsorted(targets, req.vertices)],
                dispatched=dispatched,
                completed=completed,
                batch_index=batch_index,
                batch_size=len(batch),
            )
            for req in batch
        ]
