"""Budgeted memoization of penultimate-layer representations.

The most expensive part of serving a request for vertex ``v`` is computing
the layer ``L-1`` representations of ``v``'s in-neighbors — each of which
needs its own ``(L-1)``-hop ego network.  Those representations depend only
on the (frozen) model weights and each vertex's own neighborhood, so they
are perfect memoization targets: the :class:`EmbeddingCache` keeps exact
copies of ``h^{L-1}`` rows for hot vertices under a per-server byte budget,
the same budget discipline as
:class:`~repro.partition.cache.CachedFeatureStore` applies to feature rows.

Because cached rows are exact copies of deterministically recomputable
values, serving logits are bit-identical with the cache on or off — the
budget is purely a latency/throughput lever (tested, and asserted by
``benchmarks/bench_serving.py``).

Admission is frequency-ranked like the feature cache's ``lfu`` policy:
every lookup counts, and when the cache is over budget the top
``capacity_rows`` vertices by ``(count, lower id wins ties)`` are retained.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ServeStats", "EmbeddingCache"]


@dataclass
class ServeStats:
    """Hit/miss counters of one :class:`EmbeddingCache`.

    ``requests`` counts requested embedding rows (one per frontier vertex
    per micro-batch); ``inserts``/``evictions`` track capacity churn, and
    ``invalidations`` counts rows dropped through :meth:`EmbeddingCache.invalidate`
    (graph updates dirtying cached values) — deliberately separate from
    ``evictions`` so budget pressure and update churn are distinguishable.
    ``shed`` counts inference requests this server's
    :class:`~repro.serve.admission.AdmissionController` refused (fleet
    serving only; always 0 under ``shed_policy="none"``).
    """

    requests: int = 0
    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    invalidations: int = 0
    shed: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of requested rows served from the cache."""
        return self.hits / self.requests if self.requests else 0.0

    def reset(self) -> None:
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0
        self.invalidations = 0
        self.shed = 0

    def publish(self, registry, **labels) -> None:
        """Copy the counters into a metrics registry
        (:mod:`repro.obs.metrics`) under ``serve_cache_*`` /
        ``serve_shed_total`` names, labeled e.g. by replica."""
        for name, help_text, value in (
            ("serve_cache_requests_total", "embedding rows requested", self.requests),
            ("serve_cache_hits_total", "embedding rows served from cache", self.hits),
            ("serve_cache_misses_total", "embedding rows recomputed", self.misses),
            ("serve_cache_inserts_total", "embedding rows inserted", self.inserts),
            ("serve_cache_evictions_total", "budget evictions", self.evictions),
            (
                "serve_cache_invalidations_total",
                "rows dropped by graph updates",
                self.invalidations,
            ),
            ("serve_shed_total", "inference requests shed by admission", self.shed),
        ):
            registry.counter(name, help_text, **labels).set(value)
        registry.gauge(
            "serve_cache_hit_rate", "fraction of rows served from cache", **labels
        ).set(self.hit_rate)


class EmbeddingCache:
    """An exact, byte-budgeted cache of ``h^{L-1}`` rows.

    ``budget_bytes`` buys ``budget_bytes // (8 * row_dim)`` rows (fp64, the
    representation width the numpy model computes in).  ``n`` is the vertex
    count, used for the frequency counters.
    """

    def __init__(self, n: int, row_dim: int, *, budget_bytes: float) -> None:
        if n <= 0 or row_dim <= 0:
            raise ValueError("n and row_dim must be positive")
        if budget_bytes < 0:
            raise ValueError("embedding budget must be non-negative bytes")
        self.n = n
        self.row_dim = row_dim
        self.row_bytes = 8 * row_dim
        self.capacity_rows = min(n, int(budget_bytes // self.row_bytes))
        self.stats = ServeStats()
        self._counts = np.zeros(n, dtype=np.int64)
        self._cached = np.zeros(n, dtype=bool)
        self._rows: dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def cached_ids(self) -> np.ndarray:
        """Sorted vertex ids currently cached."""
        return np.sort(np.fromiter(self._rows, dtype=np.int64, count=len(self._rows)))

    def lookup(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split ``ids`` into (hit mask, gathered hit rows).

        Counts every id toward the frequency ranking; the returned rows
        align with ``ids[mask]`` and are exact copies of the inserted rows.
        """
        ids = np.asarray(ids, dtype=np.int64)
        np.add.at(self._counts, ids, 1)
        mask = self._cached[ids]
        n_hits = int(mask.sum())
        rows = (
            np.stack([self._rows[int(v)] for v in ids[mask]])
            if n_hits
            else np.empty((0, self.row_dim))
        )
        self.stats.requests += ids.size
        self.stats.hits += n_hits
        self.stats.misses += ids.size - n_hits
        return mask, rows

    def insert(self, ids: np.ndarray, rows: np.ndarray) -> None:
        """Offer freshly computed rows; the budget keeps the hottest.

        The retained set after an insert is the top ``capacity_rows``
        vertices of ``cached + offered`` ranked by observed request count
        (ties to the lower vertex id), mirroring the feature cache's LFU
        refresh — deterministic for a deterministic request stream.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size != rows.shape[0]:
            raise ValueError("need exactly one row per id")
        if self.capacity_rows == 0 or ids.size == 0:
            return
        for v, row in zip(ids, rows):
            self._rows[int(v)] = row.copy()
            self.stats.inserts += 1
        self._cached[ids] = True
        overflow = len(self._rows) - self.capacity_rows
        if overflow > 0:
            cached = self.cached_ids
            order = np.lexsort((cached, -self._counts[cached]))
            for v in cached[order][self.capacity_rows :]:
                del self._rows[int(v)]
                self._cached[v] = False
                self.stats.evictions += 1

    def invalidate(self, ids: np.ndarray) -> int:
        """Drop cached rows for ``ids``; returns how many were resident.

        The protocol hook graph updates call: a dirty vertex's ``h^{L-1}``
        row is stale the moment any row in its receptive field changes, so
        it must be recomputed on next request rather than served.  Counted
        in ``stats.invalidations`` (not ``evictions``); frequency counters
        are kept, so a hot vertex re-enters the cache on its next miss.
        """
        ids = np.unique(np.asarray(ids, dtype=np.int64))
        if ids.size and (ids[0] < 0 or ids[-1] >= self.n):
            raise IndexError(f"vertex id out of range [0, {self.n})")
        resident = ids[self._cached[ids]]
        for v in resident:
            del self._rows[int(v)]
        self._cached[resident] = False
        self.stats.invalidations += int(resident.size)
        return int(resident.size)

    def clear(self) -> None:
        """Drop every cached row (required after any weight update)."""
        self._rows.clear()
        self._cached[:] = False
        self._counts[:] = 0
