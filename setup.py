"""Legacy setup shim: the environment's setuptools lacks PEP 517 editable
support (no wheel package offline), so ``pip install -e .`` falls back to
``setup.py develop`` via this file.  All metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
