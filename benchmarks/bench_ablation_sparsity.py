"""Ablation A (design choice, section 5.2.1): sparsity-aware vs
sparsity-oblivious 1.5D SpGEMM.

The paper chooses the Ballard-style sparsity-aware scheme over broadcasting
whole block rows.  This ablation runs the partitioned SAGE sampler both
ways on the sparse papers-sim graph and compares communicated volume and
simulated time.

Shape: when the sampled frontier touches a small fraction of V (the
paper's regime), the sparsity-aware scheme moves far fewer bytes.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table
from repro.comm import Communicator, ProcessGrid
from repro.core import SageSampler
from repro.distributed import partitioned_bulk_sampling
from repro.graphs import load_dataset
from repro.graphs.datasets import PAPER_DATASETS
from repro.partition import BlockRows

P, C = 16, 2
N_BATCHES, BATCH = 8, 32
FANOUT = (4, 3)


def test_ablation_sparsity_aware(benchmark, record_result):
    g = load_dataset("papers", scale=1.0, seed=0)
    scale = PAPER_DATASETS["papers"].edges / g.m
    rng = np.random.default_rng(1)
    batches = [rng.choice(g.n, BATCH, replace=False) for _ in range(N_BATCHES)]

    def run():
        rows = []
        for aware in (True, False):
            comm = Communicator(P, work_scale=scale)
            grid = ProcessGrid(P, C)
            blocks = BlockRows.partition(g.adj, grid.n_rows)
            partitioned_bulk_sampling(
                comm, grid, SageSampler(), blocks, batches, FANOUT,
                seed=0, sparsity_aware=aware,
            )
            rows.append(
                {
                    "scheme": "sparsity-aware" if aware else "oblivious",
                    "prob_bytes_per_rank": comm.ledger.sent("probability") / P,
                    "prob_seconds": comm.clock.phase_seconds("probability"),
                    "total_seconds": sum(comm.clock.breakdown().values()),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "ablation_sparsity",
        format_table(
            rows,
            title=(
                "Ablation A - sparsity-aware vs oblivious 1.5D SpGEMM "
                f"(papers-sim, p={P}, c={C})"
            ),
        ),
    )

    aware, oblivious = rows
    assert aware["prob_bytes_per_rank"] < oblivious["prob_bytes_per_rank"]
    assert aware["prob_seconds"] < oblivious["prob_seconds"]
