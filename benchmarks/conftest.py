"""Shared infrastructure for the paper-figure benchmarks.

Every ``bench_*`` file regenerates one of the paper's tables or figures:
it runs the simulated pipeline over the paper's parameter sweep, prints the
same rows/series the paper reports (also written to ``benchmarks/results/``)
and asserts the figure's qualitative shape.  Wall-clock kernel benchmarks
(pytest-benchmark) live in ``bench_kernels.py``.

Figure sweeps run once inside ``benchmark.pedantic(rounds=1)`` so that
``--benchmark-only`` executes them while reporting their (single-shot)
wall time alongside the simulated results.
"""

from __future__ import annotations

import functools
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write a named ASCII block to benchmarks/results/ and echo it."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record


@pytest.fixture(scope="session")
def bench_graphs():
    """Sim-scale graphs per workload, generated once per session."""
    from repro.bench import SIM_WORKLOADS, load_bench_graph

    @functools.lru_cache(maxsize=None)
    def _get(name: str):
        wl = SIM_WORKLOADS[name]
        return wl, load_bench_graph(wl)

    return _get
