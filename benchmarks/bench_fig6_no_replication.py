"""Figure 6: the Graph Replicated pipeline with vs without feature
replication (NoRep = c pinned to 1) on Papers and Protein.

Paper shapes: removing replication degrades Papers by over 2x (both the
sampling-adjacent overheads and feature fetching suffer), while Protein —
which never had a replication factor above 2 in Figure 4 — sees little
benefit at the counts where c was small anyway.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.bench.harness import run_pipeline_epoch

GPU_COUNTS = (8, 16, 32, 64, 128)


@pytest.mark.parametrize("dataset", ["papers", "protein"])
def test_fig6(dataset, benchmark, record_result, bench_graphs):
    wl, g = bench_graphs(dataset)

    def run():
        rows = []
        for p in GPU_COUNTS:
            rep, c, k = run_pipeline_epoch(g, wl, p=p)
            norep, _, _ = run_pipeline_epoch(g, wl, p=p, c=1, k=k)
            rows.append(
                {
                    "p": p,
                    "c_rep": c,
                    "rep_total": rep.total,
                    "norep_total": norep.total,
                    "rep_fetch": rep.feature_fetch,
                    "norep_fetch": norep.feature_fetch,
                    "slowdown": round(norep.total / rep.total, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        f"fig6_{dataset}",
        format_table(
            rows,
            title=f"Figure 6 [{dataset}] - replication vs NoRep (sim s/epoch)",
        ),
    )

    by_p = {r["p"]: r for r in rows}
    # Wherever replication was actually used (c > 1), NoRep is slower,
    # and the damage is in feature fetching.
    for r in rows:
        if r["c_rep"] > 1:
            assert r["norep_total"] > r["rep_total"]
            assert r["norep_fetch"] > r["rep_fetch"]
    # At high GPU counts the paper sees over 2x degradation on Papers.
    if dataset == "papers":
        assert by_p[64]["slowdown"] > 1.5
