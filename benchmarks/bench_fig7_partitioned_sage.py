"""Figure 7 (top row): Graph Partitioned GraphSAGE sampling-time breakdown.

Sweeps p in {16, 32, 64} with the paper's replication-factor choices,
breaking sampling time into the three steps of Figure 2 (probability /
sampling / extraction) and into communication vs computation.

Paper shapes: sampling time falls from 16 to 64 GPUs (1.75x on Protein,
1.43x on Papers); probability generation (the sparsity-aware 1.5D SpGEMM)
dominates; communication improves only when c grows; computation is
embarrassingly parallel in p.

The partitioned experiments use sparser/larger sim graphs than the Figure 4
workloads: the 1.5D algorithm's regime is kb << n (at paper scale the
frontier is under 1% of V), which the fig4 sim graphs do not satisfy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import format_table, write_bench_artifact
from repro.comm import Communicator, ProcessGrid
from repro.core import SageSampler
from repro.distributed import partitioned_bulk_sampling
from repro.graphs import load_dataset
from repro.graphs.datasets import PAPER_DATASETS
from repro.partition import BlockRows

#: (p, c) pairs annotated in Figure 7 for each dataset's SAGE row.
SWEEP = {"protein": ((16, 2), (32, 4), (64, 4)), "papers": ((16, 1), (32, 2), (64, 4))}
FANOUT = (4, 3)
N_BATCHES, BATCH = 32, 32


def partitioned_graph(dataset: str):
    g = load_dataset(dataset, scale=1.0, seed=0)
    scale = PAPER_DATASETS[dataset].edges / g.m
    rng = np.random.default_rng(1)
    batches = [rng.choice(g.n, BATCH, replace=False) for _ in range(N_BATCHES)]
    return g, batches, scale


def sweep_rows(dataset: str, g, batches, scale) -> list[dict]:
    """The Figure 7 SAGE sweep for one dataset (simulated seconds)."""
    rows = []
    for p, c in SWEEP[dataset]:
        comm = Communicator(p, work_scale=scale)
        grid = ProcessGrid(p, c)
        blocks = BlockRows.partition(g.adj, grid.n_rows)
        partitioned_bulk_sampling(
            comm, grid, SageSampler(), blocks, batches, FANOUT, seed=0
        )
        bd = comm.clock.breakdown()
        kinds = comm.clock.breakdown_by_kind()
        rows.append(
            {
                "p": p,
                "c": c,
                "probability": bd.get("probability", 0.0),
                "sampling": bd.get("sampling", 0.0),
                "extraction": bd.get("extraction", 0.0),
                "comm": sum(v for (_, k), v in kinds.items() if k == "comm"),
                "comp": sum(v for (_, k), v in kinds.items() if k == "compute"),
                "total": sum(bd.values()),
            }
        )
    return rows


@pytest.mark.parametrize("dataset", ["protein", "papers"])
def test_fig7_sage(dataset, benchmark, record_result):
    g, batches, scale = partitioned_graph(dataset)

    rows = benchmark.pedantic(
        sweep_rows, args=(dataset, g, batches, scale), rounds=1, iterations=1
    )
    record_result(
        f"fig7_sage_{dataset}",
        format_table(
            rows,
            title=(
                f"Figure 7 top [{dataset}] - partitioned SAGE sampling "
                "breakdown (sim s, one bulk of all minibatches)"
            ),
        ),
    )

    by_p = {r["p"]: r for r in rows}
    # Sampling time falls from 16 to 64 GPUs.
    assert by_p[64]["total"] < by_p[16]["total"]
    # Probability generation (the 1.5D SpGEMM) dominates the breakdown.
    for r in rows:
        assert r["probability"] > r["sampling"]
        assert r["probability"] > r["extraction"]
    # Computation scales with p (embarrassingly parallel steps).
    assert by_p[64]["comp"] < by_p[16]["comp"]


def main(argv: list[str] | None = None) -> int:
    """Script mode: run both dataset sweeps and write the
    ``BENCH_fig7_sage.json`` trajectory point (simulated seconds, so the
    artifact is deterministic and byte-stable across hosts)."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Figure 7 partitioned SAGE breakdown sweep"
    )
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="artifact path (default benchmarks/results/"
                        "BENCH_fig7_sage.json); 'none' disables")
    args = parser.parse_args(argv)

    all_rows, metrics = [], {}
    for dataset in SWEEP:
        g, batches, scale = partitioned_graph(dataset)
        rows = sweep_rows(dataset, g, batches, scale)
        print(format_table(
            rows, title=f"Figure 7 top [{dataset}] - partitioned SAGE "
            "breakdown (sim s)"
        ))
        by_p = {r["p"]: r for r in rows}
        metrics[f"scaling_16_to_64_{dataset}"] = (
            by_p[16]["total"] / by_p[64]["total"]
        )
        metrics[f"prob_share_p16_{dataset}"] = (
            by_p[16]["probability"] / by_p[16]["total"]
        )
        all_rows.extend({"dataset": dataset, **r} for r in rows)
    if args.json != "none":
        path = write_bench_artifact(
            "fig7_sage",
            params={"fanout": FANOUT, "n_batches": N_BATCHES,
                    "batch_size": BATCH,
                    "sweep": {d: list(s) for d, s in SWEEP.items()}},
            metrics=metrics,
            rows=all_rows,
            path=args.json,
        )
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
