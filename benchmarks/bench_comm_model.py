"""Section 5.2.1: the closed-form communication model vs the simulator.

The paper derives ``T_prob = alpha(p/c^2 + log c) + beta(kbd/c + ckbd/p)``
for generating probability distributions.  The ``kbd/c`` row-data term is a
*worst case*: it assumes every one of the ``kb`` stacked rows pulls its own
``d`` adjacency nonzeros.  The sparsity-aware implementation deduplicates
requested rows, so when the bulk frontier revisits vertices (small graphs,
layer-wise samplers) the measured row-data volume sits well below the bound
and the all-reduce term ``ckbd/p`` — which grows with c — dominates.

This benchmark records both effects:

* measured probability-phase volume never exceeds the model's total
  (the bound is sound);
* the measured volume tracks the all-reduce term's growth with c once
  dedup collapses the row-data term — the refinement the simulator adds
  over the closed form.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table
from repro.comm import Communicator, ProcessGrid
from repro.core import LadiesSampler
from repro.distributed import (
    ProbCostInputs,
    partitioned_bulk_sampling,
    predict_prob_costs,
)
from repro.graphs import erdos_renyi
from repro.partition import BlockRows

P = 16
K, B = 16, 32
N, DEG = 4096, 16


def test_comm_model(benchmark, record_result):
    rng = np.random.default_rng(3)
    adj = erdos_renyi(N, DEG, rng)
    d = adj.nnz / N
    batches = [rng.choice(N, B, replace=False) for _ in range(K)]

    def run():
        rows = []
        for c in (1, 2, 4):
            comm = Communicator(P)
            grid = ProcessGrid(P, c)
            blocks = BlockRows.partition(adj, grid.n_rows)
            partitioned_bulk_sampling(
                comm, grid, LadiesSampler(), blocks, batches, (B,), seed=0
            )
            pred = predict_prob_costs(ProbCostInputs(p=P, c=c, k=K, b=B, d=d))
            measured = comm.ledger.received("probability") / P
            bound = pred.rowdata_bytes_per_rank + pred.allreduce_bytes_per_rank
            rows.append(
                {
                    "c": c,
                    "measured_bytes_per_rank": int(measured),
                    "model_rowdata(kbd/c)": int(pred.rowdata_bytes_per_rank),
                    "model_allreduce(ckbd/p)": int(pred.allreduce_bytes_per_rank),
                    "measured/bound": round(measured / bound, 3),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "comm_model",
        format_table(
            rows,
            title=(
                "Section 5.2.1 - measured vs analytic probability-phase "
                f"volume (p={P}, k={K}, b={B}, d~{DEG})"
            ),
        ),
    )

    by_c = {r["c"]: r for r in rows}
    # The closed form is a sound upper bound at every c.
    for r in rows:
        assert r["measured/bound"] <= 1.0
    # With row-data deduplicated away, the c-growing all-reduce term shows
    # through: measured volume rises with c, tracking ckbd/p.
    assert (
        by_c[1]["measured_bytes_per_rank"]
        < by_c[2]["measured_bytes_per_rank"]
        < by_c[4]["measured_bytes_per_rank"]
    )
    # And it stays within an order of magnitude of that term.
    for c in (2, 4):
        ar = by_c[c]["model_allreduce(ckbd/p)"]
        assert 0.1 * ar < by_c[c]["measured_bytes_per_rank"] < 10 * ar
