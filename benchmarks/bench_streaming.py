"""Streaming-serving sweep: edge churn vs throughput, latency and parity.

Drives the :class:`~repro.serve.ServingEngine` over a
:class:`~repro.stream.StreamingGraph` with :class:`~repro.stream.UpdateStream`
workloads that interleave edge insert/delete batches with inference
requests, sweeping

* the **update:request ratio** (how much churn rides along with the
  traffic), once per serving mode — per-request, micro-batched, and
  micro-batched with the embedding cache (whose rows the dirty-vertex
  protocol invalidates as updates land), and
* the **compaction threshold** (how large the delta log may grow, as a
  fraction of the base nnz, before it folds into a fresh frozen CSR).

The script *asserts* the streaming contract as it runs:

* micro-batched serving still out-throughputs per-request serving under
  churn (the paper's bulk-amortization argument survives a mutating graph),
* after the full update stream — including any compactions — warm-cache
  served logits are bit-identical to
  :func:`repro.pipeline.layerwise_inference` on an independent from-scratch
  rebuild of the final graph,
* repeating a point reproduces the same logits digest (updates are part of
  the deterministic schedule, not a source of nondeterminism).

Run as a script (also wired into the CI streaming-parity job)::

    PYTHONPATH=src python benchmarks/bench_streaming.py
    PYTHONPATH=src python benchmarks/bench_streaming.py --smoke
"""

from __future__ import annotations

import argparse
import copy
import sys

import numpy as np

from repro.api import Engine, RunConfig
from repro.bench import write_bench_artifact
from repro.bench.reporting import format_table
from repro.pipeline import layerwise_inference
from repro.serve import ServingEngine
from repro.stream import StreamingGraph, UpdateStream


def run_point(
    engine: Engine,
    *,
    n_requests: int,
    update_ratio: float,
    compaction_threshold: float,
    serve_batch_size: int,
    embed_budget: float,
    seed: int,
    interarrival: float,
):
    """One sweep point: fresh graph copy, fresh stream, fresh server.

    The StreamingGraph rebinds its graph's ``adj`` as updates land, so each
    point gets a shallow graph copy — array payloads are shared (DeltaCSR
    never mutates the base in place), but churn stays point-local.
    """
    graph = copy.copy(engine.graph)
    cfg = engine.config.replace(
        serve_batch_size=serve_batch_size,
        embed_budget=embed_budget,
        compaction_threshold=compaction_threshold,
        stream_updates=True,
    )
    stream = StreamingGraph(graph, compaction_threshold=compaction_threshold)
    server = ServingEngine(engine.model, graph, cfg, stream=stream)
    workload = UpdateStream.synthetic(
        graph.adj,
        graph.test_idx,
        n_requests=n_requests,
        update_ratio=update_ratio,
        seed=seed,
        interarrival=interarrival,
    )
    report = server.process(workload)
    return server, report


def check_parity(server, engine, *, n_verts: int = 64) -> str | None:
    """Warm-cache serving on the churned graph vs layer-wise inference on
    an independent from-scratch rebuild; returns an error string or None."""
    verts = engine.graph.test_idx[:n_verts]
    served = server.serve(verts)
    rebuilt = server.stream.rebuild_from_scratch()
    reference = layerwise_inference(engine.model, rebuilt)
    if not np.array_equal(served, reference[verts]):
        return (
            "post-churn served logits are not bit-identical to layer-wise "
            "inference on a from-scratch rebuild of the final graph"
        )
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Edge churn vs serving throughput/latency/parity"
    )
    parser.add_argument("--dataset", default="products")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--fanout", default="4,3",
                        help="training fanout (serving itself is exact)")
    parser.add_argument("--hidden", type=int, default=16)
    parser.add_argument("--epochs", type=int, default=1)
    parser.add_argument("--requests", type=int, default=96,
                        help="requests per sweep point")
    parser.add_argument("--ratios", default="0,0.25,0.5",
                        help="comma-separated update:request ratios")
    parser.add_argument("--thresholds", default="0.002,0.02,0.25",
                        help="comma-separated compaction thresholds swept "
                        "at the highest ratio")
    parser.add_argument("--embed-budget", type=float, default=65536.0)
    parser.add_argument("--interarrival", type=float, default=2e-5,
                        help="simulated request gap (small = saturating load)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep for CI (fewer points and requests)")
    parser.add_argument("--gate", action="store_true",
                        help="pinned regression-gate profile (the smoke "
                        "sweep under fixed params): writes BENCH_streaming_"
                        "gate.json for check_regression.py; metrics are "
                        "simulated, so the artifact is machine-independent")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="artifact path (default benchmarks/results/"
                        "BENCH_streaming.json); 'none' disables")
    args = parser.parse_args(argv)

    if args.gate:
        args.smoke = True
    if args.smoke:
        args.requests, args.ratios, args.thresholds = 48, "0,0.5", "0.005"

    cfg = RunConfig(
        dataset=args.dataset, scale=args.scale, train_split=0.5,
        sampler="sage", fanout=tuple(int(x) for x in args.fanout.split(",")),
        batch_size=16, hidden=args.hidden, epochs=args.epochs,
        seed=args.seed,
    )
    engine = Engine(cfg)
    engine.train(cfg.epochs)

    ratios = [float(x) for x in args.ratios.split(",")]
    thresholds = [float(x) for x in args.thresholds.split(",")]
    rows = []
    failures = []
    throughput: dict[tuple[float, int], float] = {}

    # -- sweep 1: update:request ratio x serving mode -------------------- #
    for ratio in ratios:
        for batch_size, budget in (
            (1, 0.0),
            (8, 0.0),
            (8, args.embed_budget),
        ):
            server, report = run_point(
                engine, n_requests=args.requests, update_ratio=ratio,
                compaction_threshold=0.25, serve_batch_size=batch_size,
                embed_budget=budget, seed=args.seed,
                interarrival=args.interarrival,
            )
            key = (ratio, batch_size)
            throughput[key] = max(throughput.get(key, 0.0), report.throughput)
            err = check_parity(server, engine)
            if err:
                failures.append(
                    f"ratio={ratio:g} batch={batch_size} budget={budget:g}: {err}"
                )
            rows.append(
                {
                    "update_ratio": ratio,
                    "batch_cap": batch_size,
                    "embed_budget": int(budget),
                    "threshold": 0.25,
                    **report.row(),
                }
            )
    # Determinism: repeat the churniest cached point, compare digests.
    peak = max(ratios)
    _, first = run_point(
        engine, n_requests=args.requests, update_ratio=peak,
        compaction_threshold=0.25, serve_batch_size=8,
        embed_budget=args.embed_budget, seed=args.seed,
        interarrival=args.interarrival,
    )
    _, second = run_point(
        engine, n_requests=args.requests, update_ratio=peak,
        compaction_threshold=0.25, serve_batch_size=8,
        embed_budget=args.embed_budget, seed=args.seed,
        interarrival=args.interarrival,
    )
    if first.digest() != second.digest():
        failures.append(
            f"ratio={peak:g}: digest not deterministic across repeated runs"
        )

    for ratio in ratios:
        if ratio <= 0:
            continue
        if throughput[(ratio, 8)] <= throughput[(ratio, 1)]:
            failures.append(
                f"ratio={ratio:g}: micro-batched throughput "
                f"{throughput[(ratio, 8)]:.0f} req/s not strictly above "
                f"per-request {throughput[(ratio, 1)]:.0f} req/s under churn"
            )

    # -- sweep 2: compaction threshold at the highest ratio -------------- #
    threshold_rows = []
    for threshold in thresholds:
        server, report = run_point(
            engine, n_requests=args.requests, update_ratio=peak,
            compaction_threshold=threshold, serve_batch_size=8,
            embed_budget=args.embed_budget, seed=args.seed,
            interarrival=args.interarrival,
        )
        err = check_parity(server, engine)
        if err:
            failures.append(f"threshold={threshold:g}: {err}")
        threshold_rows.append(
            {
                "threshold": threshold,
                "update_ratio": peak,
                "pending_after": server.stream.delta.pending,
                **report.row(),
            }
        )

    print(format_table(
        rows,
        title=f"streaming sweep: {args.dataset} scale={args.scale} "
        f"requests/point={args.requests} (exact serving under churn)",
    ))
    print()
    print(format_table(
        threshold_rows,
        title=f"compaction-threshold sweep at update_ratio={peak:g}",
    ))
    if failures:
        for f in failures:
            print(f"error: {f}", file=sys.stderr)
        return 1
    print("ok: micro-batching beats per-request serving under churn, "
          "post-compaction served logits bit-identical to a from-scratch "
          "rebuild, digests deterministic")
    if args.json != "none":
        metrics = {
            "peak_req_per_s_microbatch": throughput[(peak, 8)],
            "peak_req_per_s_per_request": throughput[(peak, 1)],
            "churn_microbatch_speedup": throughput[(peak, 8)]
            / throughput[(peak, 1)],
            "parity": True,
        }
        if (0.0, 8) in throughput and throughput[(peak, 8)] > 0:
            metrics["churn_throughput_retention"] = (
                throughput[(peak, 8)] / throughput[(0.0, 8)]
            )
        path = write_bench_artifact(
            "streaming_gate" if args.gate else "streaming",
            params={
                "dataset": args.dataset, "scale": args.scale,
                "fanout": args.fanout, "hidden": args.hidden,
                "epochs": args.epochs, "requests": args.requests,
                "ratios": ratios, "thresholds": thresholds,
                "embed_budget": args.embed_budget,
                "interarrival": args.interarrival, "seed": args.seed,
                "smoke": bool(args.smoke),
            },
            metrics=metrics,
            rows=rows + threshold_rows,
            path=args.json,
        )
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
