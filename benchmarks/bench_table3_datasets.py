"""Table 3: dataset statistics, at paper scale and sim scale.

Regenerates the paper's dataset table (vertices, edges, batches, features)
from the specs, and the measured statistics of the synthetic stand-ins
actually used by the benchmarks, so the downscaling is auditable.
"""

from __future__ import annotations

from repro.bench import SIM_WORKLOADS, format_table
from repro.graphs import summarize, table3_rows


def test_table3(benchmark, record_result, bench_graphs):
    def run():
        paper = format_table(table3_rows(), title="Table 3 (paper scale)")
        sim_rows = []
        for name in SIM_WORKLOADS:
            wl, g = bench_graphs(name)
            row = summarize(g).row()
            row["batches"] = wl.n_batches
            row["batch_size"] = wl.batch_size
            sim_rows.append(row)
        sim = format_table(sim_rows, title="Table 3 (sim scale stand-ins)")
        return paper + "\n\n" + sim, sim_rows

    text, sim_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result("table3_datasets", text)

    # Shape assertions: density ordering must survive the downscaling.
    density = {r["name"]: r["avg_degree"] for r in sim_rows}
    assert density["protein-sim"] > density["products-sim"] > density["papers-sim"]
    # Papers keeps its large-n / sparse character.
    sizes = {r["name"]: r["vertices"] for r in sim_rows}
    assert sizes["papers-sim"] > sizes["protein-sim"] > sizes["products-sim"]
