"""Ablation C (section 6.2): feature-fetch time vs replication factor c.

Fixes p and sweeps c, isolating the all-to-allv feature fetch.  The paper's
claim: "our feature fetching time scales with the replication factor c" —
larger c means smaller process columns (fewer peers, less NIC contention)
and a larger locally-held feature fraction.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.bench.harness import run_pipeline_epoch

P = 16
C_SWEEP = (1, 2, 4, 8)


def test_ablation_replication(benchmark, record_result, bench_graphs):
    wl, g = bench_graphs("papers")

    def run():
        rows = []
        for c in C_SWEEP:
            stats, _, _ = run_pipeline_epoch(g, wl, p=P, c=c)
            rows.append(
                {
                    "c": c,
                    "fetch_s": stats.feature_fetch,
                    "total_s": stats.total,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "ablation_replication",
        format_table(
            rows,
            title=f"Ablation C - feature-fetch time vs c (papers-sim, p={P})",
        ),
    )

    fetch = {r["c"]: r["fetch_s"] for r in rows}
    # Strictly improving while contention/peer count shrink.
    assert fetch[8] < fetch[4] < fetch[2] < fetch[1]
    # The c=1 -> c=8 gap is the Figure 6 story at one p.
    assert fetch[1] / fetch[8] > 2.0
