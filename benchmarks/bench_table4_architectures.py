"""Table 4: architecture hyper-parameters used throughout the evaluation.

Echoes the paper's SAGE and LADIES configurations and the sim-scale
counterparts every other benchmark runs, validating the proportional
shrinkage (3 layers for SAGE, 1 for LADIES, same batch:width ratios).
"""

from __future__ import annotations

from repro.bench import SIM_WORKLOADS, format_table
from repro.config import LADIES_ARCH, SAGE_ARCH


def test_table4(benchmark, record_result):
    def run():
        rows = [
            {
                "GNN": SAGE_ARCH.name,
                "batch": SAGE_ARCH.batch_size,
                "fanout": str(SAGE_ARCH.fanout),
                "hidden": SAGE_ARCH.hidden,
                "layers": SAGE_ARCH.layers,
            },
            {
                "GNN": LADIES_ARCH.name,
                "batch": LADIES_ARCH.batch_size,
                "fanout": str(LADIES_ARCH.fanout),
                "hidden": LADIES_ARCH.hidden,
                "layers": LADIES_ARCH.layers,
            },
        ]
        sim_rows = [
            {
                "workload": name,
                "batch": wl.batch_size,
                "sage_fanout": str(wl.fanout),
                "ladies_width": wl.ladies_width,
            }
            for name, wl in SIM_WORKLOADS.items()
        ]
        return (
            format_table(rows, title="Table 4 (paper architectures)")
            + "\n\n"
            + format_table(sim_rows, title="Table 4 (sim-scale counterparts)")
        )

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result("table4_architectures", text)

    # The paper's invariants these configs encode.
    assert SAGE_ARCH.layers == 3 and SAGE_ARCH.fanout == (15, 10, 5)
    assert LADIES_ARCH.layers == 1 and LADIES_ARCH.fanout == (512,)
    assert LADIES_ARCH.batch_size == LADIES_ARCH.fanout[0]  # b = s = 512
    for wl in SIM_WORKLOADS.values():
        assert len(wl.fanout) == 3  # 3-layer SAGE everywhere
        # LADIES keeps the paper's b = s relation at sim scale too.
        assert wl.ladies_width >= wl.batch_size
