"""Section 8.1.3: the sampling optimizations do not affect model accuracy.

Trains the same 3-layer SAGE model under (a) bulk sampling of the whole
epoch, (b) small bulks, (c) per-epoch full-neighbor (no sampling) training,
on the planted-label products stand-in, and compares test accuracies.

Paper shape: the bulk-sampled model matches the reference within about one
accuracy point (the paper reports 77.8% on Products, within 1% of the OGB
GraphSAGE reference).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import format_table
from repro.graphs import load_dataset
from repro.api import RunConfig
from repro.pipeline import TrainingPipeline

EPOCHS = 6


@pytest.fixture(scope="module")
def accuracy_graph():
    g = load_dataset(
        "products", scale=0.5, seed=11, with_labels=True, n_classes=8
    )
    g.train_idx = np.arange(0, g.n, 2)
    return g


def _train(graph, k, seed=0):
    cfg = RunConfig(
        p=4, c=2, fanout=(5, 3, 2), batch_size=32, hidden=32, lr=0.01,
        k=k, seed=seed,
    )
    pipe = TrainingPipeline(graph, cfg)
    losses = [pipe.train_epoch(e).loss for e in range(EPOCHS)]
    return pipe.evaluate("test"), losses


def test_accuracy_parity(benchmark, record_result, accuracy_graph):
    def run():
        acc_bulk, losses_bulk = _train(accuracy_graph, k=None)
        acc_small, losses_small = _train(accuracy_graph, k=2)
        return {
            "bulk(k=all)": (acc_bulk, losses_bulk[-1]),
            "small bulks(k=2)": (acc_small, losses_small[-1]),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"configuration": name, "test_accuracy": acc, "final_loss": loss}
        for name, (acc, loss) in results.items()
    ]
    record_result(
        "accuracy_parity",
        format_table(rows, title="Section 8.1.3 - accuracy parity"),
    )

    accs = [acc for acc, _ in results.values()]
    # Every configuration learns (well above 1/8 chance)...
    assert all(a > 0.5 for a in accs)
    # ...and bulk size does not move accuracy beyond noise (paper: <1%;
    # we allow a slightly wider band at sim scale).
    assert max(accs) - min(accs) < 0.05


def test_sampler_families_reach_parity(benchmark, record_result, accuracy_graph):
    """SAGE and LADIES both train to usable accuracy in the same pipeline."""

    def run():
        out = {}
        for sampler, fanout in (("sage", (5, 3, 2)), ("ladies", (64,))):
            cfg = RunConfig(
                p=2, c=1, sampler=sampler, fanout=fanout, batch_size=32,
                hidden=32, lr=0.01, seed=3,
            )
            pipe = TrainingPipeline(accuracy_graph, cfg)
            for e in range(EPOCHS):
                pipe.train_epoch(e)
            out[sampler] = pipe.evaluate("test")
        return out

    accs = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "accuracy_samplers",
        format_table(
            [{"sampler": k, "test_accuracy": v} for k, v in accs.items()],
            title="Section 8.1.3 - per-sampler accuracy",
        ),
    )
    assert accs["sage"] > 0.5
    assert accs["ladies"] > 0.3  # layer-wise sampling trades some accuracy
