"""Serving sweep: offered load vs latency/throughput, micro-batched vs not.

A closed-loop load generator (``clients`` concurrent callers, one request
in flight each) drives the :class:`~repro.serve.ServingEngine` at
increasing offered load, once with micro-batching (``serve_batch_size=8``)
and once serving one request at a time (``serve_batch_size=1``) — the
online analogue of the paper's bulk-vs-per-batch sampling comparison.  Per
point it reports p50/p95/p99 latency, simulated throughput and the
embedding-cache hit rate.

The script *asserts* the serving subsystem's contract as it runs:

* micro-batched serving achieves strictly higher throughput than
  per-request serving at the same offered load (for ``clients >= 8``),
* served logits are bit-identical to
  :func:`repro.pipeline.layerwise_inference` for the same vertices, with
  the embedding cache on and off,
* the run is deterministic: repeating a point reproduces the same logits
  digest.

Run as a script (also wired into the CI serving smoke job)::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.api import Engine, RunConfig
from repro.bench import write_bench_artifact
from repro.bench.reporting import format_table
from repro.pipeline import layerwise_inference
from repro.serve import ClosedLoopWorkload, ServingEngine


def run_point(
    engine: Engine,
    *,
    clients: int,
    n_requests: int,
    serve_batch_size: int,
    embed_budget: float,
    seed: int,
    kernel: str | None = None,
):
    """One sweep point: a fresh server (fresh cache) over a fresh workload."""
    cfg = engine.config.replace(
        serve_batch_size=serve_batch_size, embed_budget=embed_budget,
        kernel=kernel if kernel is not None else engine.config.kernel,
    )
    server = ServingEngine(engine.model, engine.graph, cfg)
    workload = ClosedLoopWorkload(
        n_requests, engine.graph.test_idx, clients=clients, seed=seed
    )
    return server.process(workload)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Offered load vs serving latency/throughput"
    )
    parser.add_argument("--dataset", default="products")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--fanout", default="4,3")
    parser.add_argument("--hidden", type=int, default=16)
    parser.add_argument("--epochs", type=int, default=1)
    parser.add_argument("--clients", default="1,4,8,16",
                        help="comma-separated closed-loop client counts")
    parser.add_argument("--requests", type=int, default=96,
                        help="requests per sweep point")
    parser.add_argument("--embed-budget", type=float, default=65536.0)
    parser.add_argument("--kernel", default="compiled",
                        help="sparse-kernel backend the server samples "
                        "with (default 'compiled': the plan compiler)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep for CI (fewer points and requests)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="artifact path (default benchmarks/results/"
                        "BENCH_serving.json); 'none' disables")
    args = parser.parse_args(argv)

    if args.smoke:
        args.clients, args.requests = "1,8", 48

    cfg = RunConfig(
        dataset=args.dataset, scale=args.scale, train_split=0.5,
        sampler="sage", fanout=tuple(int(x) for x in args.fanout.split(",")),
        batch_size=16, hidden=args.hidden, epochs=args.epochs,
        seed=args.seed, kernel=args.kernel,
    )
    engine = Engine(cfg)
    engine.train(cfg.epochs)
    reference = layerwise_inference(engine.model, engine.graph)

    rows = []
    failures = []
    throughput: dict[tuple[int, int], float] = {}
    for clients in (int(x) for x in args.clients.split(",")):
        for batch_size, budget in (
            (1, 0.0),
            (8, 0.0),
            (8, args.embed_budget),
        ):
            report = run_point(
                engine, clients=clients, n_requests=args.requests,
                serve_batch_size=batch_size, embed_budget=budget,
                seed=args.seed,
            )
            throughput[(clients, batch_size)] = max(
                throughput.get((clients, batch_size), 0.0), report.throughput
            )
            mismatch = sum(
                not np.array_equal(r.logits, reference[r.request.vertices])
                for r in report.results
            )
            if mismatch:
                failures.append(
                    f"clients={clients} batch={batch_size} budget={budget:g}: "
                    f"{mismatch} request(s) not bit-identical to "
                    f"layerwise_inference"
                )
            repeat = run_point(
                engine, clients=clients, n_requests=args.requests,
                serve_batch_size=batch_size, embed_budget=budget,
                seed=args.seed,
            )
            if repeat.digest() != report.digest():
                failures.append(
                    f"clients={clients} batch={batch_size}: digest not "
                    f"deterministic across repeated runs"
                )
            rows.append(
                {
                    "clients": clients,
                    "batch_cap": batch_size,
                    "embed_budget": int(budget),
                    **report.row(),
                }
            )
    for clients in (int(x) for x in args.clients.split(",")):
        if clients < 8:
            continue
        if throughput[(clients, 8)] <= throughput[(clients, 1)]:
            failures.append(
                f"clients={clients}: micro-batched throughput "
                f"{throughput[(clients, 8)]:.0f} req/s not strictly above "
                f"per-request {throughput[(clients, 1)]:.0f} req/s"
            )

    # Kernel headline: the peak micro-batched point re-served through the
    # plain hash interpreter.  The compiled path must return bit-identical
    # logits while simulating fewer kernel launches (fused steps + the
    # ProbCache), i.e. strictly higher serving throughput.
    peak = max(int(x) for x in args.clients.split(","))
    kernel_speedup = None
    if args.kernel != "hash":
        hash_report = run_point(
            engine, clients=peak, n_requests=args.requests,
            serve_batch_size=8, embed_budget=args.embed_budget,
            seed=args.seed, kernel="hash",
        )
        if any(
            not np.array_equal(r.logits, reference[r.request.vertices])
            for r in hash_report.results
        ):
            failures.append(
                "hash-kernel serving logits not bit-identical to "
                "layerwise_inference"
            )
        kernel_speedup = throughput[(peak, 8)] / hash_report.throughput
        if kernel_speedup <= 1.0:
            failures.append(
                f"kernel {args.kernel!r} served no faster than hash "
                f"({kernel_speedup:.3f}x at clients={peak})"
            )

    print(format_table(
        rows,
        title=f"serving sweep: {args.dataset} scale={args.scale} "
        f"fanout={args.fanout} requests/point={args.requests} "
        f"kernel={args.kernel}",
    ))
    if kernel_speedup is not None:
        print(f"serving speedup vs hash interpreter at clients={peak}: "
              f"{kernel_speedup:.2f}x")
    if failures:
        for f in failures:
            print(f"error: {f}", file=sys.stderr)
        return 1
    print("ok: micro-batching beats per-request serving, logits "
          "bit-identical to layerwise inference (cache on or off), "
          "digests deterministic")
    if args.json != "none":
        client_counts = [int(x) for x in args.clients.split(",")]
        metrics = {
            "peak_req_per_s_microbatch": throughput[(peak, 8)],
            "peak_req_per_s_per_request": throughput[(peak, 1)],
            "microbatch_speedup": throughput[(peak, 8)]
            / throughput[(peak, 1)],
        }
        if kernel_speedup is not None:
            metrics["kernel_speedup_vs_hash"] = kernel_speedup
        path = write_bench_artifact(
            "serving",
            params={
                "dataset": args.dataset, "scale": args.scale,
                "fanout": args.fanout, "hidden": args.hidden,
                "epochs": args.epochs, "clients": client_counts,
                "requests": args.requests,
                "embed_budget": args.embed_budget, "seed": args.seed,
                "kernel": args.kernel, "smoke": bool(args.smoke),
            },
            metrics=metrics,
            rows=rows,
            path=args.json,
        )
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
