"""Serving sweep: offered load vs latency/throughput, micro-batched vs not.

A closed-loop load generator (``clients`` concurrent callers, one request
in flight each) drives the :class:`~repro.serve.ServingEngine` at
increasing offered load, once with micro-batching (``serve_batch_size=8``)
and once serving one request at a time (``serve_batch_size=1``) — the
online analogue of the paper's bulk-vs-per-batch sampling comparison.  Per
point it reports p50/p95/p99 latency, simulated throughput and the
embedding-cache hit rate.

The script *asserts* the serving subsystem's contract as it runs:

* micro-batched serving achieves strictly higher throughput than
  per-request serving at the same offered load (for ``clients >= 8``),
* served logits are bit-identical to
  :func:`repro.pipeline.layerwise_inference` for the same vertices, with
  the embedding cache on and off,
* the run is deterministic: repeating a point reproduces the same logits
  digest.

**Fleet sweep** (``BENCH_serving_fleet.json``): the same closed-loop load
at fleet scale — replica count x router policy through the
:class:`~repro.serve.ServingCluster` — asserting every fleet configuration
serves the *same* logits digest (exactness is replica-invariant), that a
routed N>1 fleet out-throughputs the single replica at high offered load,
and that the SLO autoscaler scales up and converges under an
SLO-violating load step.

Run as a script (also wired into the CI serving smoke jobs)::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --replicas 4
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.api import Engine, RunConfig
from repro.bench import write_bench_artifact
from repro.bench.reporting import format_table
from repro.pipeline import layerwise_inference
from repro.serve import ClosedLoopWorkload, ServingCluster, ServingEngine


def run_point(
    engine: Engine,
    *,
    clients: int,
    n_requests: int,
    serve_batch_size: int,
    embed_budget: float,
    seed: int,
    kernel: str | None = None,
):
    """One sweep point: a fresh server (fresh cache) over a fresh workload."""
    cfg = engine.config.replace(
        serve_batch_size=serve_batch_size, embed_budget=embed_budget,
        kernel=kernel if kernel is not None else engine.config.kernel,
    )
    server = ServingEngine(engine.model, engine.graph, cfg)
    workload = ClosedLoopWorkload(
        n_requests, engine.graph.test_idx, clients=clients, seed=seed
    )
    return server.process(workload)


def run_fleet_point(
    engine: Engine,
    *,
    replicas: int,
    router: str,
    clients: int,
    n_requests: int,
    embed_budget: float,
    seed: int,
    slo_p99: float = 0.0,
    autoscale_max: int = 8,
    autoscale_interval: float = 5e-4,
):
    """One fleet sweep point: a fresh cluster over a fresh closed loop."""
    cfg = engine.config.replace(
        replicas=replicas, router=router, embed_budget=embed_budget,
        slo_p99=slo_p99, autoscale_max=autoscale_max,
        autoscale_interval=autoscale_interval,
    )
    fleet = ServingCluster(engine.model, engine.graph, cfg)
    workload = ClosedLoopWorkload(
        n_requests, engine.graph.test_idx, clients=clients, seed=seed
    )
    return fleet.process(workload)


def run_fleet_sweep(engine: Engine, args, failures: list[str]):
    """Replica-count x router sweep + the autoscale scenario.

    Returns ``(rows, metrics)`` for the BENCH_serving_fleet artifact.
    """
    replica_counts = sorted(
        {int(x) for x in args.replicas.split(",")} | {1}
    )
    rows = []
    metrics: dict[str, float] = {}
    digests: set[str] = set()
    best_routed = 0.0
    single = 0.0
    for n in replica_counts:
        routers = ["direct"] if n == 1 else ["round_robin", "consistent_hash"]
        for router in routers:
            report = run_fleet_point(
                engine, replicas=n, router=router,
                clients=args.fleet_clients, n_requests=args.fleet_requests,
                embed_budget=args.embed_budget, seed=args.seed,
            )
            digests.add(report.digest())
            if n == 1:
                single = max(single, report.throughput)
            else:
                best_routed = max(best_routed, report.throughput)
            row = {
                "replicas": n,
                "router": router,
                "clients": args.fleet_clients,
                **report.row(),
            }
            row["spread"] = "/".join(
                str(c) for _, c in sorted(report.per_replica.items())
            )
            rows.append(row)
            metrics[f"fleet_req_per_s_n{n}_{router}"] = report.throughput
            metrics[f"fleet_p99_ms_n{n}_{router}"] = (
                report.latency_summary()["p99"] * 1e3
            )
    if len(digests) != 1:
        failures.append(
            f"fleet digests diverge across replica counts / routers: "
            f"{sorted(digests)} — exact serving must be replica-invariant"
        )
    metrics["fleet_speedup_vs_single"] = (
        best_routed / single if single > 0 else 0.0
    )
    if best_routed <= single:
        failures.append(
            f"no routed N>1 fleet out-throughputs the single replica at "
            f"clients={args.fleet_clients}: best {best_routed:.0f} vs "
            f"single {single:.0f} req/s"
        )

    # Autoscale scenario: start at one replica under an SLO-violating
    # closed-loop load step; the autoscaler must scale up and converge
    # (final two evaluation windows agree on the replica count).
    autoscale_max = max(replica_counts)
    report = run_fleet_point(
        engine, replicas=1, router="round_robin",
        clients=args.fleet_clients, n_requests=2 * args.fleet_requests,
        embed_budget=args.embed_budget, seed=args.seed,
        slo_p99=args.slo_p99, autoscale_max=autoscale_max,
        autoscale_interval=args.autoscale_interval,
    )
    trace = report.replica_trace
    final = trace[-1][1]
    metrics["autoscale_final_replicas"] = float(final)
    metrics["autoscale_req_per_s"] = report.throughput
    rows.append({
        "replicas": f"1->{final}",
        "router": "round_robin",
        "clients": args.fleet_clients,
        "trace": "->".join(str(c) for _, c in trace),
        **report.row(),
    })
    if final <= 1:
        failures.append(
            f"autoscaler did not scale up under an SLO-violating load "
            f"(slo_p99={args.slo_p99:g}, trace {trace})"
        )
    if len(trace) >= 2 and trace[-1][1] != trace[-2][1]:
        failures.append(
            f"autoscaler did not converge: replica count still moving at "
            f"the end of the run (trace {trace})"
        )
    return rows, metrics


def run_trace_overhead(engine: Engine, args, failures: list[str]) -> float:
    """Gate the observability layer's serving overhead.

    Serves the peak smoke point repeatedly with the process-wide tracer
    absent and installed, interleaved, taking the min wall time of each
    (min-of-N absorbs scheduler noise; the interleaving absorbs thermal /
    cache drift between the two arms).  Asserts the traced run stays
    within ``--overhead-budget`` (default 2%) of the untraced one and
    that both serve the identical logits digest — tracing must never
    perturb RNG or results.
    """
    from time import perf_counter

    from repro.obs import Tracer, get_tracer, set_tracer

    clients = max(int(x) for x in args.clients.split(","))
    prior = get_tracer()
    best = {False: float("inf"), True: float("inf")}
    digests: dict[bool, str] = {}
    spans = 0
    try:
        for _ in range(args.overhead_repeats):
            for traced in (False, True):
                tracer = Tracer() if traced else None
                set_tracer(tracer)
                t0 = perf_counter()
                report = run_point(
                    engine, clients=clients, n_requests=args.requests,
                    serve_batch_size=8, embed_budget=args.embed_budget,
                    seed=args.seed,
                )
                best[traced] = min(best[traced], perf_counter() - t0)
                digests[traced] = report.digest()
                if traced:
                    spans = len(tracer)
    finally:
        set_tracer(prior)
    ratio = best[True] / best[False]
    if digests[True] != digests[False]:
        failures.append(
            f"tracing perturbed the serving digest: "
            f"{digests[False]} (off) vs {digests[True]} (on)"
        )
    if not spans:
        failures.append("traced run recorded no spans — tracer not wired?")
    if ratio > 1.0 + args.overhead_budget:
        failures.append(
            f"tracing overhead {ratio:.3f}x exceeds the "
            f"{args.overhead_budget:.0%} budget (min of "
            f"{args.overhead_repeats}: {best[False] * 1e3:.1f}ms off vs "
            f"{best[True] * 1e3:.1f}ms on)"
        )
    print(
        f"trace overhead at clients={clients}: {ratio:.3f}x "
        f"(budget {1.0 + args.overhead_budget:.2f}x, {spans} spans/run, "
        f"digest stable)"
    )
    return ratio


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Offered load vs serving latency/throughput"
    )
    parser.add_argument("--dataset", default="products")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--fanout", default="4,3")
    parser.add_argument("--hidden", type=int, default=16)
    parser.add_argument("--epochs", type=int, default=1)
    parser.add_argument("--clients", default="1,4,8,16",
                        help="comma-separated closed-loop client counts")
    parser.add_argument("--requests", type=int, default=96,
                        help="requests per sweep point")
    parser.add_argument("--embed-budget", type=float, default=65536.0)
    parser.add_argument("--kernel", default="compiled",
                        help="sparse-kernel backend the server samples "
                        "with (default 'compiled': the plan compiler)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep for CI (fewer points and requests)")
    parser.add_argument("--gate", action="store_true",
                        help="pinned regression-gate profile (the smoke "
                        "sweep under fixed params): writes BENCH_serving_"
                        "gate.json for check_regression.py; metrics are "
                        "simulated, so the artifact is machine-independent")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="artifact path (default benchmarks/results/"
                        "BENCH_serving.json); 'none' disables")
    parser.add_argument("--replicas", default=None, metavar="N,N,...",
                        help="fleet sizes for the replica x router sweep "
                        "(1 is always included as the baseline); omit to "
                        "skip the fleet sweep")
    parser.add_argument("--fleet-clients", type=int, default=128,
                        dest="fleet_clients", metavar="N",
                        help="closed-loop clients for the fleet sweep "
                        "(high offered load), default 128")
    parser.add_argument("--fleet-requests", type=int, default=512,
                        dest="fleet_requests", metavar="N",
                        help="requests per fleet sweep point, default 512")
    parser.add_argument("--slo-p99", type=float, default=2e-4,
                        dest="slo_p99", metavar="SECONDS",
                        help="p99 SLO for the autoscale scenario, "
                        "default 2e-4")
    parser.add_argument("--autoscale-interval", type=float, default=5e-4,
                        dest="autoscale_interval", metavar="SECONDS",
                        help="autoscaler window for the scenario, "
                        "default 5e-4")
    parser.add_argument("--fleet-json", default=None, metavar="PATH",
                        dest="fleet_json",
                        help="fleet artifact path (default benchmarks/"
                        "results/BENCH_serving_fleet.json); 'none' disables")
    parser.add_argument("--trace-overhead", action="store_true",
                        dest="trace_overhead",
                        help="run only the observability overhead gate: "
                        "serve the peak point with the tracer off vs on, "
                        "assert wall-time ratio within --overhead-budget "
                        "and digest equality")
    parser.add_argument("--overhead-repeats", type=int, default=5,
                        dest="overhead_repeats", metavar="N",
                        help="min-of-N repeats per arm for the overhead "
                        "gate, default 5")
    parser.add_argument("--overhead-budget", type=float, default=0.02,
                        dest="overhead_budget", metavar="FRACTION",
                        help="allowed traced/untraced wall-time overhead, "
                        "default 0.02 (2%%)")
    args = parser.parse_args(argv)

    if args.gate:
        args.smoke = True
    if args.smoke:
        args.clients, args.requests = "1,8", 48
        args.fleet_clients = min(args.fleet_clients, 64)
        args.fleet_requests = min(args.fleet_requests, 256)

    cfg = RunConfig(
        dataset=args.dataset, scale=args.scale, train_split=0.5,
        sampler="sage", fanout=tuple(int(x) for x in args.fanout.split(",")),
        batch_size=16, hidden=args.hidden, epochs=args.epochs,
        seed=args.seed, kernel=args.kernel,
    )
    engine = Engine(cfg)
    engine.train(cfg.epochs)
    reference = layerwise_inference(engine.model, engine.graph)

    if args.trace_overhead:
        failures: list[str] = []
        run_trace_overhead(engine, args, failures)
        if failures:
            for f in failures:
                print(f"error: {f}", file=sys.stderr)
            return 1
        print("ok: tracing overhead within budget, digest unperturbed")
        return 0

    rows = []
    failures = []
    throughput: dict[tuple[int, int], float] = {}
    for clients in (int(x) for x in args.clients.split(",")):
        for batch_size, budget in (
            (1, 0.0),
            (8, 0.0),
            (8, args.embed_budget),
        ):
            report = run_point(
                engine, clients=clients, n_requests=args.requests,
                serve_batch_size=batch_size, embed_budget=budget,
                seed=args.seed,
            )
            throughput[(clients, batch_size)] = max(
                throughput.get((clients, batch_size), 0.0), report.throughput
            )
            mismatch = sum(
                not np.array_equal(r.logits, reference[r.request.vertices])
                for r in report.results
            )
            if mismatch:
                failures.append(
                    f"clients={clients} batch={batch_size} budget={budget:g}: "
                    f"{mismatch} request(s) not bit-identical to "
                    f"layerwise_inference"
                )
            repeat = run_point(
                engine, clients=clients, n_requests=args.requests,
                serve_batch_size=batch_size, embed_budget=budget,
                seed=args.seed,
            )
            if repeat.digest() != report.digest():
                failures.append(
                    f"clients={clients} batch={batch_size}: digest not "
                    f"deterministic across repeated runs"
                )
            rows.append(
                {
                    "clients": clients,
                    "batch_cap": batch_size,
                    "embed_budget": int(budget),
                    **report.row(),
                }
            )
    for clients in (int(x) for x in args.clients.split(",")):
        if clients < 8:
            continue
        if throughput[(clients, 8)] <= throughput[(clients, 1)]:
            failures.append(
                f"clients={clients}: micro-batched throughput "
                f"{throughput[(clients, 8)]:.0f} req/s not strictly above "
                f"per-request {throughput[(clients, 1)]:.0f} req/s"
            )

    # Kernel headline: the peak micro-batched point re-served through the
    # plain hash interpreter.  The compiled path must return bit-identical
    # logits while simulating fewer kernel launches (fused steps + the
    # ProbCache), i.e. strictly higher serving throughput.
    peak = max(int(x) for x in args.clients.split(","))
    kernel_speedup = None
    if args.kernel != "hash":
        hash_report = run_point(
            engine, clients=peak, n_requests=args.requests,
            serve_batch_size=8, embed_budget=args.embed_budget,
            seed=args.seed, kernel="hash",
        )
        if any(
            not np.array_equal(r.logits, reference[r.request.vertices])
            for r in hash_report.results
        ):
            failures.append(
                "hash-kernel serving logits not bit-identical to "
                "layerwise_inference"
            )
        kernel_speedup = throughput[(peak, 8)] / hash_report.throughput
        if kernel_speedup <= 1.0:
            failures.append(
                f"kernel {args.kernel!r} served no faster than hash "
                f"({kernel_speedup:.3f}x at clients={peak})"
            )

    print(format_table(
        rows,
        title=f"serving sweep: {args.dataset} scale={args.scale} "
        f"fanout={args.fanout} requests/point={args.requests} "
        f"kernel={args.kernel}",
    ))
    if kernel_speedup is not None:
        print(f"serving speedup vs hash interpreter at clients={peak}: "
              f"{kernel_speedup:.2f}x")

    fleet_rows: list[dict] = []
    fleet_metrics: dict[str, float] = {}
    if args.replicas is not None:
        fleet_rows, fleet_metrics = run_fleet_sweep(engine, args, failures)
        print(format_table(
            fleet_rows,
            title=f"serving fleet sweep: clients={args.fleet_clients} "
            f"requests/point={args.fleet_requests} "
            f"autoscale slo_p99={args.slo_p99:g}",
        ))

    if failures:
        for f in failures:
            print(f"error: {f}", file=sys.stderr)
        return 1
    print("ok: micro-batching beats per-request serving, logits "
          "bit-identical to layerwise inference (cache on or off), "
          "digests deterministic")
    if args.replicas is not None:
        print(f"ok: fleet digest replica-invariant, best routed fleet "
              f"{fleet_metrics['fleet_speedup_vs_single']:.2f}x the single "
              f"replica, autoscaler converged at "
              f"{int(fleet_metrics['autoscale_final_replicas'])} replicas")
    if args.json != "none":
        client_counts = [int(x) for x in args.clients.split(",")]
        metrics = {
            "peak_req_per_s_microbatch": throughput[(peak, 8)],
            "peak_req_per_s_per_request": throughput[(peak, 1)],
            "microbatch_speedup": throughput[(peak, 8)]
            / throughput[(peak, 1)],
        }
        if kernel_speedup is not None:
            metrics["kernel_speedup_vs_hash"] = kernel_speedup
        path = write_bench_artifact(
            "serving_gate" if args.gate else "serving",
            params={
                "dataset": args.dataset, "scale": args.scale,
                "fanout": args.fanout, "hidden": args.hidden,
                "epochs": args.epochs, "clients": client_counts,
                "requests": args.requests,
                "embed_budget": args.embed_budget, "seed": args.seed,
                "kernel": args.kernel, "smoke": bool(args.smoke),
            },
            metrics=metrics,
            rows=rows,
            path=args.json,
        )
        print(f"wrote {path}")
    if args.replicas is not None and args.fleet_json != "none":
        path = write_bench_artifact(
            "serving_fleet",
            params={
                "dataset": args.dataset, "scale": args.scale,
                "fanout": args.fanout, "hidden": args.hidden,
                "epochs": args.epochs, "seed": args.seed,
                "kernel": args.kernel, "smoke": bool(args.smoke),
                "replicas": sorted(
                    {int(x) for x in args.replicas.split(",")} | {1}
                ),
                "fleet_clients": args.fleet_clients,
                "fleet_requests": args.fleet_requests,
                "embed_budget": args.embed_budget,
                "slo_p99": args.slo_p99,
                "autoscale_interval": args.autoscale_interval,
            },
            metrics=fleet_metrics,
            rows=fleet_rows,
            path=args.fleet_json,
        )
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
