"""Feature-cache sweep: replication budget vs fetch volume vs epoch time.

Sweeps the per-rank cache budget on the partitioned LADIES and SAGE
pipelines and reports, per budget, the measured feature-fetch volume, the
cache hit rate, and the serial vs double-buffered simulated epoch time.
The script *asserts* the subsystem's contract as it runs:

* any positive budget strictly decreases feature-fetch volume vs the
  uncached baseline,
* training loss is bit-identical across budgets and policies (the cache
  returns exact rows, so it can never change learning),
* the double-buffered schedule (``overlap=True``) never reports a slower
  epoch than the serial sum, and saves time on every swept workload.

Run as a script (also wired into the CI bench smoke step)::

    PYTHONPATH=src python benchmarks/bench_feature_cache.py
    PYTHONPATH=src python benchmarks/bench_feature_cache.py \
        --scale 0.2 --budgets 0,32000,128000 --policy lfu

Like the other ``bench_*`` scripts it writes a schema-versioned
``BENCH_feature_cache.json`` trajectory point (disable with
``--json none``).
"""

from __future__ import annotations

import argparse
import sys

from repro.api import Engine, RunConfig
from repro.bench import write_bench_artifact

#: (sampler key, fanout) for the two partitioned benchmark pipelines.
SWEEP_SAMPLERS = (("ladies", (16,)), ("sage", (4, 2)))


def run_epoch(cfg: RunConfig) -> dict[str, object]:
    """Train ``cfg.epochs`` epochs; returns the sweep row of the last one
    (multi-epoch runs let the LFU policy warm up before measuring)."""
    engine = Engine(cfg)
    stats = engine.train(cfg.epochs)[-1]
    cache = engine.cache_stats
    return {
        "sampler": cfg.sampler,
        "budget": int(cfg.cache_budget),
        "policy": cfg.cache_policy if cfg.cache_budget else "-",
        "hit_rate": cache.hit_rate if cache else 0.0,
        "fetch_bytes": engine.pipeline.comm.ledger.sent("feature_fetch"),
        "fill_bytes": engine.pipeline.comm.ledger.sent("cache_fill"),
        "fetch_s": stats.feature_fetch,
        "serial_s": stats.total,
        "pipelined_s": stats.pipelined_total,
        "loss": stats.loss,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Cache budget vs feature-fetch volume and epoch time"
    )
    parser.add_argument("--dataset", default="products")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--p", type=int, default=4)
    parser.add_argument("--c", type=int, default=2)
    parser.add_argument("--k", type=int, default=2,
                        help="bulk size in minibatches")
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--epochs", type=int, default=1)
    parser.add_argument("--policy", default="degree",
                        choices=("degree", "lfu"))
    parser.add_argument("--budgets", default="0,32000,128000",
                        help="comma-separated per-rank cache budgets (bytes)")
    parser.add_argument("--gate", action="store_true",
                        help="pinned regression-gate profile (fixed small "
                        "sweep): writes BENCH_feature_cache_gate.json for "
                        "check_regression.py; metrics are simulated, so "
                        "the artifact is machine-independent")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="artifact path (default benchmarks/results/"
                        "BENCH_feature_cache.json); 'none' disables")
    args = parser.parse_args(argv)

    if args.gate:
        args.scale, args.budgets = 0.1, "0,32000,128000"
        args.p, args.c, args.k, args.policy = 4, 2, 2, "degree"
        args.batch_size, args.epochs = 16, 1

    budgets = [float(x) for x in args.budgets.split(",")]
    if budgets[0] != 0.0:
        budgets.insert(0, 0.0)  # always measure the uncached baseline

    rows = []
    failures = []
    for sampler, fanout in SWEEP_SAMPLERS:
        base = dict(
            dataset=args.dataset, scale=args.scale, p=args.p, c=args.c,
            algorithm="partitioned", sampler=sampler, fanout=fanout,
            batch_size=args.batch_size, hidden=16, train_split=0.5,
            epochs=args.epochs, k=args.k, seed=0, overlap=True,
            cache_policy=args.policy,
        )
        sweep = [run_epoch(RunConfig(**base, cache_budget=b)) for b in budgets]
        rows.extend(sweep)
        baseline = sweep[0]
        for row in sweep[1:]:
            if row["loss"] != baseline["loss"]:
                failures.append(
                    f"{sampler}: loss changed under budget {row['budget']} "
                    f"({row['loss']} vs {baseline['loss']})"
                )
            if row["fetch_bytes"] >= baseline["fetch_bytes"]:
                failures.append(
                    f"{sampler}: fetch volume did not decrease under "
                    f"budget {row['budget']}"
                )
        for row in sweep:
            if row["pipelined_s"] > row["serial_s"] + 1e-12:
                failures.append(
                    f"{sampler}: overlapped epoch slower than serial at "
                    f"budget {row['budget']}"
                )
        if not all(
            row["pipelined_s"] < sweep[0]["serial_s"] for row in sweep
        ):
            failures.append(f"{sampler}: overlap saved no time")

    header = (f"{'sampler':<8} {'budget':>8} {'policy':>7} {'hit%':>6} "
              f"{'fetch MB':>9} {'fill MB':>8} {'fetch_s':>9} "
              f"{'serial_s':>9} {'pipelined_s':>11} {'loss':>9}")
    print(f"feature-cache sweep: {args.dataset} scale={args.scale} "
          f"p={args.p} c={args.c} k={args.k} policy={args.policy}")
    print(header)
    for row in rows:
        print(f"{row['sampler']:<8} {row['budget']:>8} {row['policy']:>7} "
              f"{row['hit_rate'] * 100:>5.1f}% "
              f"{row['fetch_bytes'] / 1e6:>9.3f} "
              f"{row['fill_bytes'] / 1e6:>8.3f} {row['fetch_s']:>9.5f} "
              f"{row['serial_s']:>9.5f} {row['pipelined_s']:>11.5f} "
              f"{row['loss']:>9.4f}")

    if failures:
        for f in failures:
            print(f"error: {f}", file=sys.stderr)
        return 1
    print("ok: volume decreases with budget, losses bit-identical, "
          "overlap never slower")
    if args.json != "none":
        # Headline per sampler: fetch-volume reduction and hit rate at the
        # largest budget, relative to the uncached baseline.  All metrics
        # are simulated/deterministic, so the artifact is byte-stable.
        metrics = {}
        for sampler, _ in SWEEP_SAMPLERS:
            sweep = [r for r in rows if r["sampler"] == sampler]
            base, top = sweep[0], sweep[-1]
            metrics[f"fetch_reduction_{sampler}"] = (
                1.0 - top["fetch_bytes"] / base["fetch_bytes"]
            )
            metrics[f"hit_rate_{sampler}"] = top["hit_rate"]
            metrics[f"overlap_saving_{sampler}"] = (
                1.0 - top["pipelined_s"] / top["serial_s"]
            )
        path = write_bench_artifact(
            "feature_cache_gate" if args.gate else "feature_cache",
            params={
                "dataset": args.dataset, "scale": args.scale,
                "p": args.p, "c": args.c, "k": args.k,
                "batch_size": args.batch_size, "epochs": args.epochs,
                "policy": args.policy, "budgets": budgets,
            },
            metrics=metrics,
            rows=rows,
            path=args.json,
        )
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
