"""Wall-clock kernel benchmarks (pytest-benchmark proper).

Unlike the figure benchmarks — which report *simulated* seconds — these
track the real execution speed of the reproduction's hot kernels, so
regressions in the numpy implementations are visible.

The SpGEMM benchmarks sweep every backend registered in
:data:`repro.sparse.KERNELS`, so a new backend is benchmarked (and checked
against the reference result) just by registering it.

The file also runs as a script for the kernel-vs-kernel comparison on the
LADIES frontier workload (the duplicate-heavy ``Q A`` product the hash
backend targets)::

    PYTHONPATH=src python benchmarks/bench_kernels.py --kernel hash
    PYTHONPATH=src python benchmarks/bench_kernels.py --kernel scipy --log-n 14
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np
import pytest

from repro.core import (
    FastGCNSampler,
    GraphSaintRWSampler,
    LadiesSampler,
    SageSampler,
    its_sample_rows,
)
from repro.graphs import rmat
from repro.sparse import (
    KERNELS,
    get_kernel,
    indicator_rows,
    row_normalize,
    spgemm,
    spmm,
    sprand,
)

KERNEL_NAMES = KERNELS.names()


@pytest.fixture(scope="module")
def medium_adj():
    return rmat(12, 16, np.random.default_rng(0))


@pytest.fixture(scope="module")
def medium_batches(medium_adj):
    rng = np.random.default_rng(1)
    return [
        rng.choice(medium_adj.shape[0], 128, replace=False) for _ in range(16)
    ]


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_spgemm_kernel(benchmark, kernel):
    rng = np.random.default_rng(2)
    a = sprand(2000, 2000, 0.005, rng)
    b = sprand(2000, 2000, 0.005, rng)
    out = benchmark(KERNELS.get(kernel).spgemm, a, b)
    assert out.nnz > 0
    assert out.equal(spgemm(a, b), 1e-9)


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_ladies_frontier_spgemm(benchmark, kernel, medium_adj, medium_batches):
    """The duplicate-heavy LADIES probability product ``Q A``."""
    q = LadiesSampler.make_q(medium_batches, medium_adj.shape[0])
    out = benchmark(KERNELS.get(kernel).spgemm, q, medium_adj)
    assert out.nnz > 0
    assert out.equal(spgemm(q, medium_adj), 1e-9)


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_spmm_kernel(benchmark, kernel):
    rng = np.random.default_rng(3)
    a = sprand(5000, 5000, 0.002, rng)
    x = rng.standard_normal((5000, 64))
    out = benchmark(KERNELS.get(kernel).spmm, a, x)
    assert out.shape == (5000, 64)
    assert np.allclose(out, spmm(a, x))


def test_its_kernel(benchmark, medium_adj):
    rng = np.random.default_rng(4)
    q = SageSampler.make_q(
        rng.choice(medium_adj.shape[0], 2048, replace=False),
        medium_adj.shape[0],
    )
    p = row_normalize(spgemm(q, medium_adj))

    out = benchmark(its_sample_rows, p, 10, rng)
    assert out.nnz > 0


def test_bulk_sage_sampling(benchmark, medium_adj, medium_batches):
    sampler = SageSampler()
    rng = np.random.default_rng(5)
    out = benchmark(
        sampler.sample_bulk, medium_adj, medium_batches, (10, 5), rng
    )
    assert len(out) == len(medium_batches)


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_bulk_ladies_sampling(benchmark, medium_adj, medium_batches, kernel):
    sampler = LadiesSampler(kernel=kernel)
    rng = np.random.default_rng(6)
    out = benchmark(
        sampler.sample_bulk, medium_adj, medium_batches, (256,), rng
    )
    assert len(out) == len(medium_batches)


def test_rmat_generation(benchmark):
    out = benchmark(rmat, 11, 8, np.random.default_rng(7))
    assert out.shape == (2048, 2048)


# ---------------------------------------------------------------------- #
# Script mode: kernel comparison on the LADIES frontier workload
# ---------------------------------------------------------------------- #
def _best_of(fn, *args, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def _bulk_digest(samples) -> bytes:
    import hashlib

    h = hashlib.sha256()
    for mb in samples:
        h.update(np.ascontiguousarray(mb.batch, dtype=np.int64).tobytes())
        for layer in mb.layers:
            for arr in (
                layer.adj.indptr, layer.adj.indices, layer.adj.data,
                np.asarray(layer.src_ids, dtype=np.int64),
                np.asarray(layer.dst_ids, dtype=np.int64),
            ):
                h.update(np.ascontiguousarray(arr).tobytes())
            h.update(repr(layer.adj.shape).encode())
    return h.digest()


def main(argv: list[str] | None = None) -> int:
    """Compare one kernel backend against a baseline on the LADIES
    frontier product and an end-to-end bulk sampling pass of every
    built-in sampler, asserting bit-identical samples along the way."""
    parser = argparse.ArgumentParser(
        description="Sparse-kernel backend comparison "
        "(frontier SpGEMM + end-to-end sampler sweep)"
    )
    parser.add_argument("--kernel", default="hash", choices=KERNELS.names())
    parser.add_argument("--baseline", default="esc", choices=KERNELS.names())
    parser.add_argument("--log-n", type=int, default=13,
                        help="rmat scale: 2^log_n vertices (default 13)")
    parser.add_argument("--degree", type=int, default=16)
    parser.add_argument("--batches", type=int, default=16)
    parser.add_argument("--batch-size", type=int, default=512)
    parser.add_argument("--fanout", type=int, default=256)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--smoke", action="store_true",
                        help="CI preset: log_n 11, 4 batches x 128, "
                        "fanout 64, 2 repeats")
    parser.add_argument("--gate", action="store_true",
                        help="pinned regression-gate profile: smoke sizes, "
                        "compiled vs esc, artifact BENCH_kernels_gate.json "
                        "carrying an env fingerprint (wall-clock numbers "
                        "are machine-specific; the gate compares the "
                        "speedup ratios)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="artifact path (default benchmarks/results/"
                        "BENCH_kernels.json); 'none' disables")
    args = parser.parse_args(argv)
    if args.gate:
        args.kernel, args.baseline, args.smoke = "compiled", "esc", True
    if args.smoke:
        args.log_n, args.batches = 11, 4
        args.batch_size, args.fanout, args.repeats = 128, 64, 2

    rng = np.random.default_rng(0)
    adj = rmat(args.log_n, args.degree, rng)
    n = adj.shape[0]
    batches = [
        rng.choice(n, min(args.batch_size, n), replace=False)
        for _ in range(args.batches)
    ]
    q = LadiesSampler.make_q(batches, n)
    kern = get_kernel(args.kernel)
    base = get_kernel(args.baseline)

    out = kern.spgemm(q, adj)
    ref = base.spgemm(q, adj)
    out.check()
    if not out.equal(ref, 1e-9):
        print(f"error: {args.kernel} result differs from {args.baseline}",
              file=sys.stderr)
        return 1

    print(f"workload: {n} vertices, {adj.nnz} edges, "
          f"{args.batches} batches x {len(batches[0])} vertices")
    # rows: (slug, label, t_baseline, t_kernel)
    rows = []
    t_base = _best_of(base.spgemm, q, adj, repeats=args.repeats)
    t_kern = _best_of(kern.spgemm, q, adj, repeats=args.repeats)
    rows.append(("frontier", "frontier SpGEMM (Q A)", t_base, t_kern))

    # End-to-end bulk sampling, all four built-in samplers.  Same seed on
    # both backends; the digest assert makes "faster but different" loud.
    sampler_cases = [
        ("sage", lambda k: SageSampler(kernel=k),
         (max(2, args.fanout // 8), max(2, args.fanout // 16))),
        ("ladies", lambda k: LadiesSampler(kernel=k), (args.fanout,)),
        ("fastgcn", lambda k: FastGCNSampler(kernel=k), (args.fanout,)),
        ("saint", lambda k: GraphSaintRWSampler(walk_length=3, kernel=k),
         (2, 2)),
    ]
    bulk_repeats = max(1, args.repeats // 2)
    for slug, factory, fanout in sampler_cases:
        def bulk(kernel_name):
            return factory(kernel_name).sample_bulk(
                adj, batches, fanout, np.random.default_rng(1)
            )

        if _bulk_digest(bulk(args.baseline)) != _bulk_digest(bulk(args.kernel)):
            print(f"error: {slug} samples differ between {args.kernel} and "
                  f"{args.baseline}", file=sys.stderr)
            return 1
        t_base = _best_of(bulk, args.baseline, repeats=bulk_repeats)
        t_kern = _best_of(bulk, args.kernel, repeats=bulk_repeats)
        rows.append((slug, f"bulk {slug} sampling", t_base, t_kern))

    width = max(len(r[1]) for r in rows)
    print(f"{'workload':<{width}}  {args.baseline:>10}  {args.kernel:>10}  speedup")
    for _, name, tb, tk in rows:
        print(f"{name:<{width}}  {tb * 1e3:8.2f}ms  {tk * 1e3:8.2f}ms  "
              f"{tb / tk:6.2f}x")
    if args.json != "none":
        from repro.bench import env_fingerprint, write_bench_artifact

        path = write_bench_artifact(
            "kernels_gate" if args.gate else "kernels",
            env=env_fingerprint() if args.gate else None,
            params={
                "kernel": args.kernel, "baseline": args.baseline,
                "log_n": args.log_n, "degree": args.degree,
                "batches": args.batches, "batch_size": args.batch_size,
                "fanout": args.fanout, "repeats": args.repeats,
                "vertices": n, "edges": adj.nnz,
            },
            # Wall-clock, so these are host-dependent trajectory points —
            # the speedup ratios are the comparable metric across hosts.
            metrics={
                f"speedup_{slug}": tb / tk for slug, _, tb, tk in rows
            },
            rows=[
                {
                    "workload": name,
                    f"{args.baseline}_ms": tb * 1e3,
                    f"{args.kernel}_ms": tk * 1e3,
                    "speedup": tb / tk,
                }
                for _, name, tb, tk in rows
            ],
            path=args.json,
        )
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
