"""Wall-clock kernel benchmarks (pytest-benchmark proper).

Unlike the figure benchmarks — which report *simulated* seconds — these
track the real execution speed of the reproduction's hot kernels, so
regressions in the numpy implementations are visible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LadiesSampler, SageSampler, its_sample_rows
from repro.graphs import rmat
from repro.sparse import row_normalize, spgemm, spmm, sprand


@pytest.fixture(scope="module")
def medium_adj():
    return rmat(12, 16, np.random.default_rng(0))


@pytest.fixture(scope="module")
def medium_batches(medium_adj):
    rng = np.random.default_rng(1)
    return [
        rng.choice(medium_adj.shape[0], 128, replace=False) for _ in range(16)
    ]


def test_spgemm_kernel(benchmark):
    rng = np.random.default_rng(2)
    a = sprand(2000, 2000, 0.005, rng)
    b = sprand(2000, 2000, 0.005, rng)
    out = benchmark(spgemm, a, b)
    assert out.nnz > 0


def test_spmm_kernel(benchmark):
    rng = np.random.default_rng(3)
    a = sprand(5000, 5000, 0.002, rng)
    x = rng.standard_normal((5000, 64))
    out = benchmark(spmm, a, x)
    assert out.shape == (5000, 64)


def test_its_kernel(benchmark, medium_adj):
    rng = np.random.default_rng(4)
    q = SageSampler.make_q(
        rng.choice(medium_adj.shape[0], 2048, replace=False),
        medium_adj.shape[0],
    )
    p = row_normalize(spgemm(q, medium_adj))

    out = benchmark(its_sample_rows, p, 10, rng)
    assert out.nnz > 0


def test_bulk_sage_sampling(benchmark, medium_adj, medium_batches):
    sampler = SageSampler()
    rng = np.random.default_rng(5)
    out = benchmark(
        sampler.sample_bulk, medium_adj, medium_batches, (10, 5), rng
    )
    assert len(out) == len(medium_batches)


def test_bulk_ladies_sampling(benchmark, medium_adj, medium_batches):
    sampler = LadiesSampler()
    rng = np.random.default_rng(6)
    out = benchmark(
        sampler.sample_bulk, medium_adj, medium_batches, (256,), rng
    )
    assert len(out) == len(medium_batches)


def test_rmat_generation(benchmark):
    out = benchmark(rmat, 11, 8, np.random.default_rng(7))
    assert out.shape == (2048, 2048)
