"""Wall-clock multi-core bulk sampling: the shared-memory worker pool.

Unlike the simulated figure benchmarks, this measures *real* elapsed time:
it publishes one CSR adjacency to shared memory, spins up persistent
worker pools of increasing size, and times the same bulk sampling pass at
``workers`` in {1, 2, 4, 8} against the serial (``workers=0``) reference.
Two contracts are asserted as it runs:

* **bit-identity** — the sampled output digest is identical at every
  worker count (the per-global-batch-index RNG discipline makes the
  batch partition invisible); a mismatch is a hard failure, and
* **speedup** — on a machine with enough cores (``os.cpu_count() >= 4``),
  the full profile must reach > 1.5x at ``workers=4`` vs ``workers=1``
  on at least one sampler.  On smaller machines the assert is skipped
  loudly (a 1-core box cannot demonstrate parallel speedup; the digest
  checks still run).

The artifact (``BENCH_parallel.json``) carries an environment fingerprint
because wall-clock numbers are machine-specific: the regression gate
refuses to compare artifacts from different machines unless invoked with
``--ignore-env``, which CI uses to gate the machine-portable speedup
*ratios* only.

Run::

    PYTHONPATH=src python benchmarks/bench_parallel.py          # full
    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke  # CI-sized
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
import time

import numpy as np

from repro.core import LadiesSampler, SageSampler
from repro.core.bulk import batch_rng
from repro.graphs import rmat

#: (slug, sampler factory) — the swept bulk-sampling workloads.
SAMPLER_CASES = (
    ("sage", SageSampler),
    ("ladies", LadiesSampler),
)
FANOUTS = {"sage": (10, 5), "ladies": (256,)}
SMOKE_FANOUTS = {"sage": (4, 2), "ladies": (32,)}


def bulk_digest(samples) -> str:
    """Deterministic digest over every sampled layer of a bulk."""
    h = hashlib.sha256()
    for mb in samples:
        h.update(np.ascontiguousarray(mb.batch, dtype=np.int64).tobytes())
        for layer in mb.layers:
            for arr in (
                layer.adj.indptr, layer.adj.indices, layer.adj.data,
                np.asarray(layer.src_ids, dtype=np.int64),
                np.asarray(layer.dst_ids, dtype=np.int64),
            ):
                h.update(np.ascontiguousarray(arr).tobytes())
            h.update(repr(layer.adj.shape).encode())
    return h.hexdigest()


def serial_bulk(sampler, adj, batches, fanout, seed):
    """The workers=0 reference: same per-global-batch-index RNG streams
    the pool workers use, so outputs must match bit for bit."""
    rngs = [batch_rng(seed, i) for i in range(len(batches))]
    return sampler.sample_bulk(adj, batches, fanout, rngs)


def best_of(fn, repeats: int) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Wall-clock bulk sampling over the shared-memory "
        "worker pool (workers sweep + bit-identity asserts)"
    )
    parser.add_argument("--log-n", type=int, default=14,
                        help="rmat scale: 2^log_n vertices (default 14)")
    parser.add_argument("--degree", type=int, default=16)
    parser.add_argument("--batches", type=int, default=32)
    parser.add_argument("--batch-size", type=int, default=1024)
    parser.add_argument("--workers", default="1,2,4,8",
                        help="comma-separated pool sizes (0 = serial is "
                        "always measured as the reference)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="CI preset: log_n 11, 8 batches x 256, "
                        "workers 1,2,4, 1 repeat (digest asserts only — "
                        "workloads this small cannot show speedup)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="artifact path (default benchmarks/results/"
                        "BENCH_parallel.json); 'none' disables")
    args = parser.parse_args(argv)
    if args.smoke:
        args.log_n, args.batches, args.batch_size = 11, 8, 256
        args.workers, args.repeats = "1,2,4", 1

    from repro.bench import env_fingerprint, write_bench_artifact
    from repro.parallel import SamplerSpec, SharedGraph, WorkerPool

    worker_counts = sorted({int(x) for x in args.workers.split(",")} - {0})
    cpu = os.cpu_count() or 1
    rng = np.random.default_rng(args.seed)
    adj = rmat(args.log_n, args.degree, rng)
    n = adj.shape[0]
    batches = [
        rng.choice(n, min(args.batch_size, n), replace=False)
        for _ in range(args.batches)
    ]
    indices = list(range(len(batches)))
    fanouts = SMOKE_FANOUTS if args.smoke else FANOUTS
    print(f"workload: {n} vertices, {adj.nnz} edges, {args.batches} "
          f"batches x {len(batches[0])}, cpu_count={cpu}, "
          f"workers sweep {worker_counts}")

    rows = []
    failures = []
    serial_ms: dict[str, float] = {}
    digests: dict[str, str] = {}
    for slug, factory in SAMPLER_CASES:
        sampler = factory()
        fanout = fanouts[slug]
        t, samples = best_of(
            lambda: serial_bulk(sampler, adj, batches, fanout, args.seed),
            args.repeats,
        )
        serial_ms[slug] = t * 1e3
        digests[slug] = bulk_digest(samples)
        rows.append({"sampler": slug, "workers": 0, "wall_clock_s": t,
                     "speedup_vs_w1": None, "digest": digests[slug][:16]})

    shared = SharedGraph.publish(adj)
    pool_ms: dict[tuple[str, int], float] = {}
    try:
        for workers in worker_counts:
            with WorkerPool(workers, shared) as pool:
                for slug, factory in SAMPLER_CASES:
                    spec = SamplerSpec(
                        sampler=slug, fanout=fanouts[slug],
                        for_training=False,
                    )
                    pool.register(spec)
                    # Warm attach/registration before timing.
                    pool.sample_bulk(spec, batches[:1], [0], args.seed)
                    t, out = best_of(
                        lambda: pool.sample_bulk(
                            spec, batches, indices, args.seed
                        ),
                        args.repeats,
                    )
                    samples, _totals = out
                    pool_ms[(slug, workers)] = t * 1e3
                    digest = bulk_digest(samples)
                    if digest != digests[slug]:
                        failures.append(
                            f"{slug} at workers={workers}: digest {digest} "
                            f"differs from serial {digests[slug]}"
                        )
                    rows.append({
                        "sampler": slug, "workers": workers,
                        "wall_clock_s": t, "speedup_vs_w1": None,
                        "digest": digest[:16],
                    })
    finally:
        shared.release()

    for row in rows:
        w = row["workers"]
        if w and (row["sampler"], 1) in pool_ms:
            row["speedup_vs_w1"] = (
                pool_ms[(row["sampler"], 1)]
                / pool_ms[(row["sampler"], w)]
            )

    width = 10
    print(f"{'sampler':<8} {'workers':>7} {'wall ms':>{width}} "
          f"{'vs serial':>9} {'vs w1':>7}")
    for row in rows:
        slug, w = row["sampler"], row["workers"]
        ms = row["wall_clock_s"] * 1e3
        vs_serial = serial_ms[slug] / ms
        vs_w1 = row["speedup_vs_w1"]
        print(f"{slug:<8} {w:>7} {ms:>{width}.2f} {vs_serial:>8.2f}x "
              f"{'-' if vs_w1 is None else f'{vs_w1:5.2f}x'}")

    best_speedup = {
        slug: max(
            (pool_ms[(slug, 1)] / pool_ms[(slug, w)]
             for w in worker_counts if w >= 4 and (slug, w) in pool_ms),
            default=0.0,
        )
        for slug, _ in SAMPLER_CASES
    }
    if not args.smoke and 4 in worker_counts:
        if cpu >= 4:
            if max(best_speedup.values()) <= 1.5:
                failures.append(
                    f"no sampler reached >1.5x at workers=4 vs workers=1 "
                    f"on a {cpu}-core machine: {best_speedup}"
                )
        else:
            print(f"SKIPPED speedup assert: only {cpu} core(s) available — "
                  f"a parallel speedup cannot manifest here; digest "
                  f"bit-identity was still verified at every worker count")

    if failures:
        for f in failures:
            print(f"error: {f}", file=sys.stderr)
        return 1
    print("ok: sampled output bit-identical at every worker count")

    if args.json != "none":
        metrics = {}
        for slug, _ in SAMPLER_CASES:
            for w in worker_counts:
                metrics[f"speedup_{slug}_w{w}"] = (
                    pool_ms[(slug, 1)] / pool_ms[(slug, w)]
                )
        path = write_bench_artifact(
            "parallel",
            env=env_fingerprint(),
            params={
                "log_n": args.log_n, "degree": args.degree,
                "batches": args.batches, "batch_size": args.batch_size,
                "workers": worker_counts, "repeats": args.repeats,
                "seed": args.seed, "smoke": bool(args.smoke),
                "vertices": n, "edges": adj.nnz,
            },
            metrics=metrics,
            rows=rows,
            path=args.json,
        )
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
