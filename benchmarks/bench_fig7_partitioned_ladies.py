"""Figure 7 (bottom row): Graph Partitioned LADIES breakdown + the serial
CPU reference crossover.

Paper shapes: distributed LADIES scales across p; time is dominated by the
(column-)extraction step, executed as a series of smaller per-batch CSR
SpGEMMs (the memory workaround of section 8.2.2); and the distributed runs
begin to beat the serial CPU reference (43.9 s on Papers, 3.12 s on Protein
at paper scale) at high GPU counts.
"""

from __future__ import annotations

import pytest

from repro.baselines import reference_cpu_ladies
from repro.bench import format_table, write_bench_artifact
from repro.comm import Communicator, ProcessGrid
from repro.core import LadiesSampler
from repro.distributed import partitioned_bulk_sampling
from repro.partition import BlockRows

from bench_fig7_partitioned_sage import partitioned_graph

SWEEP = ((16, 1), (32, 2), (64, 4))
WIDTH = 64


def sweep_rows(g, batches, scale) -> tuple[list[dict], float]:
    """The Figure 7 LADIES sweep plus the serial CPU reference time."""
    cpu = reference_cpu_ladies(g, batches, WIDTH, work_scale=scale).seconds
    rows = []
    for p, c in SWEEP:
        comm = Communicator(p, work_scale=scale)
        grid = ProcessGrid(p, c)
        blocks = BlockRows.partition(g.adj, grid.n_rows)
        partitioned_bulk_sampling(
            comm, grid, LadiesSampler(), blocks, batches, (WIDTH,),
            seed=0,
        )
        bd = comm.clock.breakdown()
        rows.append(
            {
                "p": p,
                "c": c,
                "probability": bd.get("probability", 0.0),
                "sampling": bd.get("sampling", 0.0),
                "extraction": bd.get("extraction", 0.0),
                "total": sum(bd.values()),
                "cpu_reference": cpu,
            }
        )
    return rows, cpu


@pytest.mark.parametrize("dataset", ["protein", "papers"])
def test_fig7_ladies(dataset, benchmark, record_result):
    g, batches, scale = partitioned_graph(dataset)

    rows, cpu = benchmark.pedantic(
        sweep_rows, args=(g, batches, scale), rounds=1, iterations=1
    )
    record_result(
        f"fig7_ladies_{dataset}",
        format_table(
            rows,
            title=(
                f"Figure 7 bottom [{dataset}] - partitioned LADIES "
                "breakdown vs serial CPU reference (sim s)"
            ),
        ),
    )

    by_p = {r["p"]: r for r in rows}
    # Distributed LADIES scales with p.
    assert by_p[64]["total"] < by_p[16]["total"]
    # Extraction (dominated by column extraction) is the largest step.
    for r in rows:
        assert r["extraction"] >= r["sampling"]
    # The crossover: by 64 GPUs the distributed sampler beats the serial
    # CPU reference (the paper reports exactly this threshold).
    assert by_p[64]["total"] < cpu


def main(argv: list[str] | None = None) -> int:
    """Script mode: run both dataset sweeps and write the
    ``BENCH_fig7_ladies.json`` trajectory point (simulated seconds)."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Figure 7 partitioned LADIES breakdown sweep"
    )
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="artifact path (default benchmarks/results/"
                        "BENCH_fig7_ladies.json); 'none' disables")
    args = parser.parse_args(argv)

    all_rows, metrics = [], {}
    for dataset in ("protein", "papers"):
        g, batches, scale = partitioned_graph(dataset)
        rows, cpu = sweep_rows(g, batches, scale)
        print(format_table(
            rows, title=f"Figure 7 bottom [{dataset}] - partitioned "
            "LADIES breakdown vs serial CPU reference (sim s)"
        ))
        by_p = {r["p"]: r for r in rows}
        metrics[f"scaling_16_to_64_{dataset}"] = (
            by_p[16]["total"] / by_p[64]["total"]
        )
        metrics[f"crossover_margin_p64_{dataset}"] = cpu / by_p[64]["total"]
        all_rows.extend({"dataset": dataset, **r} for r in rows)
    if args.json != "none":
        path = write_bench_artifact(
            "fig7_ladies",
            params={"width": WIDTH, "sweep": list(SWEEP)},
            metrics=metrics,
            rows=all_rows,
            path=args.json,
        )
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
