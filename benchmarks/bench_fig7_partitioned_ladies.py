"""Figure 7 (bottom row): Graph Partitioned LADIES breakdown + the serial
CPU reference crossover.

Paper shapes: distributed LADIES scales across p; time is dominated by the
(column-)extraction step, executed as a series of smaller per-batch CSR
SpGEMMs (the memory workaround of section 8.2.2); and the distributed runs
begin to beat the serial CPU reference (43.9 s on Papers, 3.12 s on Protein
at paper scale) at high GPU counts.
"""

from __future__ import annotations

import pytest

from repro.baselines import reference_cpu_ladies
from repro.bench import format_table
from repro.comm import Communicator, ProcessGrid
from repro.core import LadiesSampler
from repro.distributed import partitioned_bulk_sampling
from repro.partition import BlockRows

from bench_fig7_partitioned_sage import partitioned_graph

SWEEP = ((16, 1), (32, 2), (64, 4))
WIDTH = 64


@pytest.mark.parametrize("dataset", ["protein", "papers"])
def test_fig7_ladies(dataset, benchmark, record_result):
    g, batches, scale = partitioned_graph(dataset)

    def run():
        cpu = reference_cpu_ladies(
            g, batches, WIDTH, work_scale=scale
        ).seconds
        rows = []
        for p, c in SWEEP:
            comm = Communicator(p, work_scale=scale)
            grid = ProcessGrid(p, c)
            blocks = BlockRows.partition(g.adj, grid.n_rows)
            partitioned_bulk_sampling(
                comm, grid, LadiesSampler(), blocks, batches, (WIDTH,),
                seed=0,
            )
            bd = comm.clock.breakdown()
            rows.append(
                {
                    "p": p,
                    "c": c,
                    "probability": bd.get("probability", 0.0),
                    "sampling": bd.get("sampling", 0.0),
                    "extraction": bd.get("extraction", 0.0),
                    "total": sum(bd.values()),
                    "cpu_reference": cpu,
                }
            )
        return rows, cpu

    rows, cpu = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        f"fig7_ladies_{dataset}",
        format_table(
            rows,
            title=(
                f"Figure 7 bottom [{dataset}] - partitioned LADIES "
                "breakdown vs serial CPU reference (sim s)"
            ),
        ),
    )

    by_p = {r["p"]: r for r in rows}
    # Distributed LADIES scales with p.
    assert by_p[64]["total"] < by_p[16]["total"]
    # Extraction (dominated by column extraction) is the largest step.
    for r in rows:
        assert r["extraction"] >= r["sampling"]
    # The crossover: by 64 GPUs the distributed sampler beats the serial
    # CPU reference (the paper reports exactly this threshold).
    assert by_p[64]["total"] < cpu
