"""CI gate: diff fresh BENCH_*.json artifacts against committed baselines.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py FRESH.json
    PYTHONPATH=src python benchmarks/check_regression.py \
        fresh_serving.json fresh_streaming.json fresh_feature_cache.json
    PYTHONPATH=src python benchmarks/check_regression.py FRESH.json \
        --baseline benchmarks/results/BENCH_serving_fleet.json \
        --tolerance 0.1

Accepts one or more fresh artifacts and checks *every* one before
exiting, so a single CI step can gate all deterministic families and the
failure output names every out-of-tolerance metric across all of them —
not just the first family that happened to regress.  Without
``--baseline`` each committed artifact is located from the fresh
artifact's ``bench`` name (``benchmarks/results/BENCH_<bench>.json``);
an explicit ``--baseline`` only makes sense with a single fresh file.

Directional metrics (throughput/speedup up, latency/makespan down) must
stay within ``--tolerance`` of the baseline; params must match exactly
(excluding ``--ignore-params`` keys) or the artifacts are declared
incomparable — a different invocation proves nothing about perf.

Artifacts carrying an environment fingerprint (``env`` key — wall-clock
benches like ``bench_parallel`` attach one) must additionally match on it,
because wall-clock numbers are machine-specific; ``--ignore-env`` skips
that check for cross-machine *ratio* gating (speedups, hit rates).

Exit codes: 0 ok, 1 regression, 2 usage/schema error, 3 params mismatch,
4 environment mismatch.  When several kinds of failure occur across the
checked artifacts, regressions win (1), then params (3), then env (4),
then schema/usage (2) — the code reports the failure CI should fix first.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench import (
    EnvMismatch,
    ParamsMismatch,
    compare_artifacts,
    default_artifact_path,
    load_bench_artifact,
    metric_direction,
)


def _check_one(
    fresh_path: str, args: argparse.Namespace
) -> tuple[str, list, int | None]:
    """Gate one fresh artifact.

    Returns ``(bench_name, regressions, error_code)`` where
    ``error_code`` is an exit code (2/3/4) when the artifact could not be
    compared at all, else ``None``.
    """
    ignore = tuple(k for k in args.ignore_params.split(",") if k)
    bench_name = fresh_path
    try:
        fresh = load_bench_artifact(fresh_path)
        bench_name = fresh.get("bench", fresh_path)
        baseline_path = (
            Path(args.baseline)
            if args.baseline is not None
            else default_artifact_path(fresh["bench"])
        )
        if not baseline_path.exists():
            print(
                f"error: no committed baseline at {baseline_path} — commit "
                f"one first (copy the fresh artifact once it is trusted)",
                file=sys.stderr,
            )
            return bench_name, [], 2
        baseline = load_bench_artifact(baseline_path)
        regressions = compare_artifacts(
            baseline, fresh, tolerance=args.tolerance, ignore_params=ignore,
            ignore_env=args.ignore_env,
        )
    except ParamsMismatch as exc:
        print(f"error: {bench_name}: {exc}", file=sys.stderr)
        return bench_name, [], 3
    except EnvMismatch as exc:
        print(f"error: {bench_name}: {exc}", file=sys.stderr)
        return bench_name, [], 4
    except (ValueError, OSError) as exc:
        print(f"error: {bench_name}: {exc}", file=sys.stderr)
        return bench_name, [], 2

    gated = sorted(
        name
        for name, value in baseline.get("metrics", {}).items()
        if metric_direction(name) is not None
        and isinstance(value, (int, float))
    )
    print(
        f"{baseline['bench']}: {len(gated)} gated metric(s) vs "
        f"{baseline_path} at {args.tolerance:.0%} tolerance"
    )
    for name in gated:
        base = baseline["metrics"][name]
        now = fresh.get("metrics", {}).get(name, float("nan"))
        arrow = {"higher": ">=", "lower": "<="}[metric_direction(name)]
        print(f"  {name}: {base:g} -> {now:g} (want {arrow} within tolerance)")
    for r in regressions:
        print(f"regression: {bench_name}: {r}", file=sys.stderr)
    return bench_name, list(regressions), None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on perf regressions vs committed BENCH artifacts"
    )
    parser.add_argument("fresh", nargs="+",
                        help="freshly emitted BENCH_*.json file(s) to check")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="committed artifact to compare against "
                        "(default: benchmarks/results/BENCH_<bench>.json "
                        "for each fresh artifact's bench name; only valid "
                        "with a single fresh file)")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed relative drift per metric, default 0.05")
    parser.add_argument("--ignore-params", default="", metavar="K1,K2",
                        help="comma-separated param keys excluded from the "
                        "comparability check")
    parser.add_argument("--ignore-env", action="store_true",
                        help="skip the environment-fingerprint match (gate "
                        "machine-independent ratios across machines)")
    args = parser.parse_args(argv)

    if args.baseline is not None and len(args.fresh) > 1:
        print(
            "error: --baseline only makes sense with a single fresh "
            "artifact (multiple artifacts resolve baselines by bench name)",
            file=sys.stderr,
        )
        return 2

    failed_metrics: list[str] = []  # "bench:metric" across all artifacts
    error_codes: list[int] = []
    for fresh_path in args.fresh:
        bench_name, regressions, error = _check_one(fresh_path, args)
        if error is not None:
            error_codes.append(error)
        failed_metrics.extend(f"{bench_name}:{r.metric}" for r in regressions)

    if failed_metrics:
        print(
            f"error: {len(failed_metrics)} regressed metric(s): "
            + ", ".join(failed_metrics),
            file=sys.stderr,
        )
        return 1
    # No regressions, but some artifact(s) could not be compared at all:
    # params beats env beats schema, mirroring the single-file semantics.
    for code in (3, 4, 2):
        if code in error_codes:
            return code
    print("ok: no out-of-tolerance perf regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
