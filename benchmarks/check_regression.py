"""CI gate: diff a fresh BENCH_*.json against the committed baseline.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py FRESH.json
    PYTHONPATH=src python benchmarks/check_regression.py FRESH.json \
        --baseline benchmarks/results/BENCH_serving_fleet.json \
        --tolerance 0.1

Without ``--baseline`` the committed artifact is located from the fresh
artifact's ``bench`` name (``benchmarks/results/BENCH_<bench>.json``).
Directional metrics (throughput/speedup up, latency/makespan down) must
stay within ``--tolerance`` of the baseline; params must match exactly
(excluding ``--ignore-params`` keys) or the artifacts are declared
incomparable — a different invocation proves nothing about perf.

Artifacts carrying an environment fingerprint (``env`` key — wall-clock
benches like ``bench_parallel`` attach one) must additionally match on it,
because wall-clock numbers are machine-specific; ``--ignore-env`` skips
that check for cross-machine *ratio* gating (speedups, hit rates).

Exit codes: 0 ok, 1 regression, 2 usage/schema error, 3 params mismatch,
4 environment mismatch.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench import (
    EnvMismatch,
    ParamsMismatch,
    compare_artifacts,
    default_artifact_path,
    load_bench_artifact,
    metric_direction,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on perf regressions vs a committed BENCH artifact"
    )
    parser.add_argument("fresh", help="freshly emitted BENCH_*.json to check")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="committed artifact to compare against "
                        "(default: benchmarks/results/BENCH_<bench>.json "
                        "for the fresh artifact's bench name)")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed relative drift per metric, default 0.05")
    parser.add_argument("--ignore-params", default="", metavar="K1,K2",
                        help="comma-separated param keys excluded from the "
                        "comparability check")
    parser.add_argument("--ignore-env", action="store_true",
                        help="skip the environment-fingerprint match (gate "
                        "machine-independent ratios across machines)")
    args = parser.parse_args(argv)

    ignore = tuple(k for k in args.ignore_params.split(",") if k)
    try:
        fresh = load_bench_artifact(args.fresh)
        baseline_path = (
            Path(args.baseline)
            if args.baseline is not None
            else default_artifact_path(fresh["bench"])
        )
        if not baseline_path.exists():
            print(
                f"error: no committed baseline at {baseline_path} — commit "
                f"one first (copy the fresh artifact once it is trusted)",
                file=sys.stderr,
            )
            return 2
        baseline = load_bench_artifact(baseline_path)
        regressions = compare_artifacts(
            baseline, fresh, tolerance=args.tolerance, ignore_params=ignore,
            ignore_env=args.ignore_env,
        )
    except ParamsMismatch as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except EnvMismatch as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 4
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    gated = sorted(
        name
        for name, value in baseline.get("metrics", {}).items()
        if metric_direction(name) is not None
        and isinstance(value, (int, float))
    )
    print(
        f"{baseline['bench']}: {len(gated)} gated metric(s) vs "
        f"{baseline_path} at {args.tolerance:.0%} tolerance"
    )
    for name in gated:
        base = baseline["metrics"][name]
        now = fresh.get("metrics", {}).get(name, float("nan"))
        arrow = {"higher": ">=", "lower": "<="}[metric_direction(name)]
        print(f"  {name}: {base:g} -> {now:g} (want {arrow} within tolerance)")
    if regressions:
        for r in regressions:
            print(f"regression: {r}", file=sys.stderr)
        return 1
    print("ok: no out-of-tolerance perf regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
