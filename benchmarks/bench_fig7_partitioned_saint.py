"""Figure-7-style sweep for *partitioned GraphSAINT* — new in this repo.

The paper's Figure 7 breaks Graph Partitioned sampling into probability /
sampling / extraction for SAGE and LADIES.  GraphSAINT could not appear
there: graph-wise sampling had no per-layer partitioned formulation.  With
the sampling-plan IR it runs under the same 1.5D executor — the walk's
``P = Q A`` products and the subgraph induction's row extraction become
Algorithm-2 SpGEMMs — so this benchmark produces the SAINT row Figure 7
never had, over the same GPU sweep.

Asserted shapes:

* sampling time falls from 16 to 64 GPUs (the scaling headline);
* computation is embarrassingly parallel in ``p``;
* all three derived phases receive work, and extraction (the induced-
  subgraph SpGEMMs over the whole visited set) outweighs the per-step
  SAMPLE cost — the graph-wise analogue of LADIES' extraction-heavy
  profile;
* output is bit-identical to single-rank sampling (the parity property
  the per-batch RNG streams guarantee), so the sweep measures systems
  effects only, never sampling noise.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.bench import format_table, write_bench_artifact
from repro.comm import Communicator, ProcessGrid
from repro.core import GraphSaintRWSampler
from repro.distributed import (
    partitioned_bulk_sampling,
    replicated_bulk_sampling,
)
from repro.graphs import load_dataset
from repro.graphs.datasets import PAPER_DATASETS
from repro.partition import BlockRows

#: (p, c) pairs matching the Figure 7 annotations for each dataset.
SWEEP = {"protein": ((16, 2), (32, 4), (64, 4)), "papers": ((16, 1), (32, 2), (64, 4))}
WALK_LENGTH = 3
DEPTH = (3, 3)  # GNN depth; fanout values are ignored by SAINT
N_BATCHES, BATCH = 32, 32


def _digest(samples) -> str:
    h = hashlib.sha256()
    for mb in samples:
        for layer in mb.layers:
            h.update(np.ascontiguousarray(layer.adj.indices).tobytes())
            h.update(np.asarray(layer.src_ids, dtype=np.int64).tobytes())
    return h.hexdigest()


def partitioned_graph(dataset: str):
    g = load_dataset(dataset, scale=1.0, seed=0)
    scale = PAPER_DATASETS[dataset].edges / g.m
    rng = np.random.default_rng(1)
    batches = [rng.choice(g.n, BATCH, replace=False) for _ in range(N_BATCHES)]
    return g, batches, scale


def sweep_rows(dataset: str, g, batches, scale) -> list[dict]:
    """The Figure-7-style SAINT sweep for one dataset, with the single-rank
    parity digest asserted at every grid point."""
    sampler = GraphSaintRWSampler(walk_length=WALK_LENGTH)
    reference = _digest(
        replicated_bulk_sampling(
            Communicator(1), sampler, g.adj, batches, DEPTH, seed=0
        )[0]
    )
    rows = []
    for p, c in SWEEP[dataset]:
        comm = Communicator(p, work_scale=scale)
        grid = ProcessGrid(p, c)
        blocks = BlockRows.partition(g.adj, grid.n_rows)
        samples, _ = partitioned_bulk_sampling(
            comm, grid, sampler, blocks, batches, DEPTH, seed=0
        )
        assert _digest(samples) == reference  # parity vs single rank
        bd = comm.clock.breakdown()
        kinds = comm.clock.breakdown_by_kind()
        rows.append(
            {
                "p": p,
                "c": c,
                "probability": bd.get("probability", 0.0),
                "sampling": bd.get("sampling", 0.0),
                "extraction": bd.get("extraction", 0.0),
                "comm": sum(v for (_, k), v in kinds.items() if k == "comm"),
                "comp": sum(v for (_, k), v in kinds.items() if k == "compute"),
                "total": sum(bd.values()),
            }
        )
    return rows


@pytest.mark.parametrize("dataset", ["protein", "papers"])
def test_fig7_saint(dataset, benchmark, record_result):
    g, batches, scale = partitioned_graph(dataset)

    rows = benchmark.pedantic(
        sweep_rows, args=(dataset, g, batches, scale), rounds=1, iterations=1
    )
    record_result(
        f"fig7_saint_{dataset}",
        format_table(
            rows,
            title=(
                f"Figure 7 (new row) [{dataset}] - partitioned GraphSAINT "
                "sampling breakdown (sim s, one bulk of all minibatches)"
            ),
        ),
    )

    by_p = {r["p"]: r for r in rows}
    # Sampling time falls from 16 to 64 GPUs.
    assert by_p[64]["total"] < by_p[16]["total"]
    # All three derived phases received work; extraction (subgraph
    # induction over the visited set) outweighs the s=1 SAMPLE cost.
    for r in rows:
        assert r["probability"] > 0 and r["sampling"] > 0
        assert r["extraction"] > r["sampling"]
    # Computation scales with p (embarrassingly parallel steps).
    assert by_p[64]["comp"] < by_p[16]["comp"]


def main(argv: list[str] | None = None) -> int:
    """Script mode: run both dataset sweeps and write the
    ``BENCH_fig7_saint.json`` trajectory point (simulated seconds; the
    parity digests make any sampling divergence a hard failure)."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Figure-7-style partitioned GraphSAINT breakdown sweep"
    )
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="artifact path (default benchmarks/results/"
                        "BENCH_fig7_saint.json); 'none' disables")
    args = parser.parse_args(argv)

    all_rows, metrics = [], {}
    for dataset in SWEEP:
        g, batches, scale = partitioned_graph(dataset)
        rows = sweep_rows(dataset, g, batches, scale)
        print(format_table(
            rows, title=f"Figure 7 (new row) [{dataset}] - partitioned "
            "GraphSAINT breakdown (sim s)"
        ))
        by_p = {r["p"]: r for r in rows}
        metrics[f"scaling_16_to_64_{dataset}"] = (
            by_p[16]["total"] / by_p[64]["total"]
        )
        metrics[f"extraction_share_p16_{dataset}"] = (
            by_p[16]["extraction"] / by_p[16]["total"]
        )
        all_rows.extend({"dataset": dataset, **r} for r in rows)
    if args.json != "none":
        path = write_bench_artifact(
            "fig7_saint",
            params={"walk_length": WALK_LENGTH, "depth": DEPTH,
                    "n_batches": N_BATCHES, "batch_size": BATCH,
                    "sweep": {d: list(s) for d, s in SWEEP.items()}},
            metrics=metrics,
            rows=all_rows,
            path=args.json,
        )
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
