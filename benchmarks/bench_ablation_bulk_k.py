"""Ablation B (sections 4, 8.1.1): bulk-size amortization.

Sweeps the bulk size k from per-batch (k=1, the Quiver/DGL regime) to the
whole epoch, measuring per-epoch sampling time on the Graph Replicated
algorithm.

Shape: sampling time falls monotonically with k and saturates once the
per-call overheads are fully amortized — the paper's explanation for why
its 4-GPU Products/Protein numbers (where memory capped k) trail its
large-GPU numbers (k = all).
"""

from __future__ import annotations

from repro.bench import format_table
from repro.bench.harness import run_pipeline_epoch

K_SWEEP = (1, 2, 4, 16, 64)
P = 4


def test_ablation_bulk_k(benchmark, record_result, bench_graphs):
    wl, g = bench_graphs("products")

    def run():
        rows = []
        for k in K_SWEEP:
            stats, c, _ = run_pipeline_epoch(g, wl, p=P, c=1, k=k)
            rows.append(
                {
                    "k": k,
                    "sampling_s": stats.sampling,
                    "total_s": stats.total,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "ablation_bulk_k",
        format_table(
            rows,
            title=f"Ablation B - per-epoch sampling time vs bulk size k (p={P})",
        ),
    )

    times = [r["sampling_s"] for r in rows]
    # Monotone non-increasing in k...
    assert all(a >= b * 0.99 for a, b in zip(times, times[1:]))
    # ...with a substantial win from per-batch to full-epoch bulks.
    assert times[0] / times[-1] > 2.0
