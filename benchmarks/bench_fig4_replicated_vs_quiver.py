"""Figure 4: Graph Replicated pipeline vs Quiver, per-phase breakdown.

For every dataset and GPU count, runs one perf-epoch of our pipeline (with
the memory model's (c, k) choice, annotated like the paper's bars) and one
of the Quiver baseline, and prints the stacked sampling / feature-fetch /
propagation breakdown.

Paper shapes this must reproduce:

* our pipeline beats Quiver at scale on every dataset (2.5x on Products at
  16 GPUs, 3.4x on Papers at 64, 8.5x on Protein at 128 in the paper);
* the speedup grows from p=4 to the mid-range as replication kicks in;
* Quiver regresses crossing the node boundary (4 -> 8 GPUs);
* Quiver's missing datapoint: preprocessing OOMs on Papers at 128 GPUs.
"""

from __future__ import annotations

import pytest

from repro.baselines import QuiverBaseline, QuiverConfig
from repro.bench import format_stacked_bars, format_table
from repro.bench.harness import run_pipeline_epoch, work_scale_for, workload_hidden
from repro.pipeline import quiver_fits

GPU_COUNTS = (4, 8, 16, 32, 64, 128)


@pytest.mark.parametrize("dataset", ["products", "protein", "papers"])
def test_fig4(dataset, benchmark, record_result, bench_graphs):
    wl, g = bench_graphs(dataset)
    scale = work_scale_for(wl, g)

    def run():
        rows = []
        for p in GPU_COUNTS:
            ours, c, k = run_pipeline_epoch(g, wl, p=p)
            k_label = "all" if k >= wl.n_batches else str(k)
            row = {
                "p": p,
                "config": f"c={c} k={k_label}",
                "sampling": ours.sampling,
                "fetch": ours.feature_fetch,
                "propagation": ours.propagation,
                "ours_total": ours.total,
            }
            if quiver_fits(wl.spec) or p < 128:
                q = QuiverBaseline(
                    g,
                    QuiverConfig(
                        p=p, fanout=wl.fanout, batch_size=wl.batch_size,
                        work_scale=scale, hidden=workload_hidden(),
                    ),
                ).train_epoch()
                row["quiver_total"] = q.total
                row["speedup"] = round(q.total / ours.total, 2)
            else:
                row["quiver_total"] = float("nan")
                row["speedup"] = "OOM"  # the paper's missing datapoint
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    bars = format_stacked_bars(
        rows, "p", ["sampling", "fetch", "propagation"],
        title=f"Figure 4 [{dataset}] - our pipeline breakdown (sim s/epoch)",
    )
    table = format_table(
        [
            {k: v for k, v in r.items() if k != "config"} | {"config": r["config"]}
            for r in rows
        ],
        title=f"Figure 4 [{dataset}] - ours vs Quiver",
    )
    record_result(f"fig4_{dataset}", bars + "\n\n" + table)

    by_p = {r["p"]: r for r in rows}
    # We win at the paper's headline points.
    assert by_p[16]["speedup"] != "OOM" and by_p[16]["speedup"] > 1.5
    assert by_p[64]["speedup"] != "OOM" and by_p[64]["speedup"] > 1.5
    # The gap grows from 4 GPUs to the mid-range.
    assert by_p[16]["speedup"] > by_p[4]["speedup"]
    # Quiver regresses crossing the node boundary.
    assert by_p[8]["quiver_total"] > by_p[4]["quiver_total"]
    # Our pipeline scales: more GPUs, faster epochs.
    assert by_p[64]["ours_total"] < by_p[4]["ours_total"]
    # The paper's Quiver-OOM point on Papers at 128 GPUs.
    if dataset == "papers":
        assert by_p[128]["speedup"] == "OOM"
