"""Figure 5: Quiver GPU sampling vs Quiver UVA sampling (Papers & Protein).

UVA stores the topology in host DRAM (sampled through unified addressing)
and keeps 80% of feature rows in DRAM with 20% cached on device.

Paper shapes: GPU sampling beats UVA at every GPU count, and the gap
shrinks as GPUs are added (sampling becomes a smaller share of the epoch).
"""

from __future__ import annotations

import pytest

from repro.baselines import QuiverBaseline, QuiverConfig
from repro.bench import format_series
from repro.bench.harness import work_scale_for, workload_hidden

GPU_COUNTS = (4, 8, 16, 32, 64)


@pytest.mark.parametrize("dataset", ["papers", "protein"])
def test_fig5(dataset, benchmark, record_result, bench_graphs):
    wl, g = bench_graphs(dataset)
    scale = work_scale_for(wl, g)

    def run():
        out = {"gpu": [], "uva": []}
        for mode in ("gpu", "uva"):
            for p in GPU_COUNTS:
                stats = QuiverBaseline(
                    g,
                    QuiverConfig(
                        p=p, mode=mode, fanout=wl.fanout,
                        batch_size=wl.batch_size, work_scale=scale,
                        hidden=workload_hidden(),
                    ),
                ).train_epoch()
                out[mode].append(stats.total)
        return out

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        f"fig5_{dataset}",
        format_series(
            {"Quiver-GPU": series["gpu"], "Quiver-UVA": series["uva"]},
            GPU_COUNTS,
            title=f"Figure 5 [{dataset}] - GPU vs UVA sampling (sim s/epoch)",
        ),
    )

    gpu, uva = series["gpu"], series["uva"]
    # GPU sampling wins at every count.
    assert all(u > g_ for u, g_ in zip(uva, gpu))
    # The relative gap shrinks with p (sampling's share of the epoch falls).
    first_gap = uva[0] / gpu[0]
    last_gap = uva[-1] / gpu[-1]
    assert last_gap < first_gap
